"""Tests for :mod:`repro.obs.summary`: tree reconstruction + aggregation."""

import pytest

from repro.obs import Span, summarize_spans
from repro.obs.summary import render_span_tree, span_children, span_depths


def make_span(name, span_id, parent_id=None, start=0.0, dur=1.0, **attrs):
    return Span(
        name=name, span_id=span_id, parent_id=parent_id,
        start_s=start, duration_s=dur, attributes=attrs,
    )


@pytest.fixture
def request_trace():
    """Two serve.request trees, shaped like a real serve-bench trace."""
    return [
        make_span("serve.request", 1, None, start=0.0, dur=1.0),
        make_span("serve.queue_wait", 2, 1, start=0.0, dur=0.2),
        make_span("serve.prepare", 3, 1, start=0.2, dur=0.3),
        make_span("llm.prepare", 4, 3, start=0.2, dur=0.25),
        make_span("serve.generate", 5, 1, start=0.5, dur=0.5),
        make_span("serve.request", 6, None, start=1.0, dur=0.6),
        make_span("serve.queue_wait", 7, 6, start=1.0, dur=0.1),
        make_span("serve.generate", 8, 6, start=1.1, dur=0.5),
    ]


class TestTreeReconstruction:
    def test_children_grouped_and_time_ordered(self, request_trace):
        children = span_children(request_trace)
        assert [s.span_id for s in children[None]] == [1, 6]
        assert [s.span_id for s in children[1]] == [2, 3, 5]
        assert [s.span_id for s in children[3]] == [4]

    def test_orphans_become_roots(self):
        spans = [make_span("lost", 5, parent_id=999)]
        children = span_children(spans)
        assert [s.span_id for s in children[None]] == [5]

    def test_depths(self, request_trace):
        depths = span_depths(request_trace)
        assert depths[1] == 0
        assert depths[2] == 1
        assert depths[4] == 2


class TestSummary:
    def test_stage_aggregation(self, request_trace):
        summary = summarize_spans(request_trace)
        assert summary.n_roots == 2
        assert summary.wall_s == pytest.approx(1.6)
        rows = {row["stage"]: row for row in summary.rows()}
        assert rows["serve.request"]["count"] == 2
        assert rows["serve.request"]["total_s"] == pytest.approx(1.6)
        assert rows["serve.request"]["share"] == pytest.approx(1.0)
        assert rows["serve.generate"]["count"] == 2
        assert rows["serve.generate"]["mean_s"] == pytest.approx(0.5)
        assert rows["serve.queue_wait"]["total_s"] == pytest.approx(0.3)

    def test_rows_ordered_and_indented_by_depth(self, request_trace):
        summary = summarize_spans(request_trace)
        rows = summary.rows()
        assert rows[0]["stage"] == "serve.request"
        depths = {row["stage"]: row["depth"] for row in rows}
        assert depths["serve.queue_wait"] == 1
        assert depths["llm.prepare"] == 2
        out = summary.render()
        assert "serve.request" in out
        assert "  serve.queue_wait" in out
        assert "    llm.prepare" in out

    def test_render_mentions_span_and_root_counts(self, request_trace):
        out = summarize_spans(request_trace).render()
        assert "8 spans" in out
        assert "2 roots" in out


class TestSpanTree:
    def test_renders_first_root_with_attributes(self, request_trace):
        request_trace[0].attributes["request_id"] = 0
        out = render_span_tree(request_trace, max_roots=1)
        lines = out.splitlines()
        assert lines[0].startswith("serve.request")
        assert "request_id=0" in lines[0]
        assert lines[1].startswith("  serve.queue_wait")
        # max_roots=1: the second tree is not rendered.
        assert sum("serve.request" in line for line in lines) == 1

    def test_max_roots_expands(self, request_trace):
        out = render_span_tree(request_trace, max_roots=2)
        assert sum(
            line.startswith("serve.request") for line in out.splitlines()
        ) == 2
