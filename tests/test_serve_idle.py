"""An idle service must be CPU-quiet: no busy-wait in the collector.

The micro-batcher's collector thread blocks in ``queue.get(timeout=...)``
between arrivals (and, since the flush-deadline fix, sleeps on
``min(_POLL_S, deadline)`` while a batch is pending).  A regression that
turns either wait into a spin would burn a full core on every idle
service — invisible to functional tests, ruinous for a nightly soak
that holds a service open for a minute.  This pins the contract: a
service with zero queued requests consumes a negligible fraction of one
CPU.
"""

from __future__ import annotations

import time

from repro.serve import PredictionService


def test_idle_service_is_cpu_quiet():
    with PredictionService() as service:
        # Let worker/collector threads finish starting before sampling.
        time.sleep(0.1)
        cpu0 = time.process_time()
        wall0 = time.monotonic()
        time.sleep(0.8)
        cpu = time.process_time() - cpu0
        wall = time.monotonic() - wall0
    # A spinning collector would burn ~1.0 CPU-second here; the blocking
    # waits measure ~0.001.  15% leaves room for slow CI runners while
    # still failing any real busy-wait instantly.
    assert cpu < 0.15 * wall, (
        f"idle service burned {cpu:.3f}s CPU over {wall:.3f}s wall — "
        "collector or worker loop is busy-waiting"
    )


def test_idle_service_stays_responsive_after_quiet_period():
    """Quietness must not come from the collector wedging itself."""
    from repro.loadgen import LoadDriver, LoadSpec, WorkloadMix

    spec = LoadSpec(
        arrival="constant", rps=20.0, duration_s=0.2, seed=3,
        mix=WorkloadMix(n_unique=2, n_tenants=1, seed_lanes=1),
        warmup=False,
    )
    with PredictionService() as service:
        time.sleep(0.6)  # idle stretch first
        report = LoadDriver(spec).run(service)
    assert report.offered == 4
    assert report.ok == 4
