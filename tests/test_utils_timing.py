"""Tests for timing helpers."""

import pytest

from repro.utils.timing import Timer, format_duration


class TestFormatDuration:
    def test_microseconds(self):
        assert format_duration(5e-5).endswith("us")

    def test_milliseconds(self):
        assert format_duration(0.25) == "250ms"

    def test_seconds(self):
        assert format_duration(3.2) == "3.2s"

    def test_minutes(self):
        out = format_duration(125)
        assert out.startswith("2m")

    def test_hours(self):
        assert format_duration(7200) == "2h 00m"

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            format_duration(-1)


class TestTimer:
    def test_measures_positive(self):
        with Timer() as t:
            sum(range(10_000))
        assert t.elapsed > 0

    def test_str_after_exit(self):
        with Timer() as t:
            pass
        assert isinstance(str(t), str)

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            sum(range(100_000))
        assert t.elapsed != first or t.elapsed >= 0
