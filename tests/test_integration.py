"""End-to-end integration tests across subsystems.

These run reduced versions of the paper's actual experiments and assert
the *qualitative findings* hold: the GBT baseline learns the task, the
LLM pipeline parrots rather than regresses, the logit analyses produce
Table-II-shaped statistics, and the haystack favours GBT at every bound.
"""

import numpy as np
import pytest

from repro.analysis import (
    enumerate_value_decodings,
    needle_fractions,
    relative_errors,
    score_predictions,
    token_position_table,
)
from repro.analysis.metrics import relative_errors
from repro.core import build_report, quick_grid, run_grid
from repro.dataset.splits import train_test_split
from repro.gbt import (
    BoostingParams,
    FeatureEncoder,
    GradientBoostingRegressor,
    TargetTransform,
)


@pytest.fixture(scope="module")
def probes():
    specs = quick_grid(
        sizes=("SM", "XL"),
        icl_counts=(2, 10),
        n_sets=2,
        seeds=(1, 2),
        n_queries=3,
    )
    return run_grid(specs, workers=2)


class TestLLMPipelineEndToEnd:
    def test_high_parse_rate(self, probes):
        report = build_report(probes)
        assert report.parse_rate > 0.9

    def test_values_cluster_near_icl_not_truth(self, probes):
        """The defining failure: predictions track ICL value statistics,
        not the query configuration."""
        close_to_icl = 0
        n = 0
        for p in probes:
            if not p.parsed or not p.icl_value_strings:
                continue
            icl_vals = np.asarray([float(v) for v in p.icl_value_strings])
            d_icl = np.abs(np.log(np.maximum(p.predicted, 1e-9)) -
                           np.log(icl_vals)).min()
            n += 1
            if d_icl < 0.6:
                close_to_icl += 1
        assert n > 0 and close_to_icl / n > 0.75

    def test_magnitude_learned_from_context(self, probes):
        """SM predictions are sub-second; XL predictions are seconds."""
        for p in probes:
            if not p.parsed or p.predicted == 0:
                continue
            if p.spec.size == "SM":
                assert p.predicted < 1.0
            else:
                assert p.predicted < 100.0

    def test_some_exact_copies_but_not_all(self, probes):
        report = build_report(probes)
        assert 0.0 < report.copy_rate < 0.6

    def test_table2_shape(self, probes):
        """pos2 is always the '.' (1 option); fraction positions offer
        orders of magnitude more choices (Table II)."""
        alts = [
            enumerate_value_decodings(p.value_steps, max_candidates=100)
            for p in probes
            if p.value_steps
        ]
        rows, perm = token_position_table(alts)
        assert rows[1].mean_possibilities < 3
        assert rows[2].mean_possibilities > 50
        assert perm.mean_possibilities > 1e4


class TestGBTVsLLM:
    @pytest.fixture(scope="class")
    def gbt_errors(self, sm_dataset):
        train, test = train_test_split(sm_dataset, 0.8, seed=1)
        enc = FeatureEncoder(sm_dataset.space)
        tt = TargetTransform("log")
        sub = train.subset(np.arange(500))
        model = GradientBoostingRegressor(
            BoostingParams(n_estimators=120, learning_rate=0.1, max_depth=5)
        ).fit(enc.encode_dataset(sub), tt.forward(sub.runtimes))
        pred = tt.inverse(model.predict(enc.encode_dataset(test)))
        return relative_errors(test.runtimes, pred)

    def test_gbt_learns_task(self, gbt_errors):
        assert float(np.median(gbt_errors)) < 0.15

    def test_gbt_beats_llm_at_every_bound(self, gbt_errors, probes):
        """Section IV-C: XGBoost strongly outperforms the LLM across all
        error thresholds."""
        llm_errors = np.asarray(
            [p.relative_error for p in probes if p.parsed and p.spec.size == "SM"]
        )
        gbt = needle_fractions(gbt_errors)
        llm = needle_fractions(llm_errors)
        for bound in (0.5, 0.1):
            assert gbt[bound] > llm[bound]


class TestDeterminismEndToEnd:
    def test_whole_pipeline_repeatable(self):
        specs = quick_grid(
            sizes=("SM",), icl_counts=(5,), n_sets=1, seeds=(1,), n_queries=2
        )
        a = run_grid(specs, workers=1)
        b = run_grid(specs, workers=1)
        assert [p.generated_text for p in a] == [p.generated_text for p in b]
        assert [p.truth for p in a] == [p.truth for p in b]
