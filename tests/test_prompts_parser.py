"""Tests for output parsing."""

import pytest

from repro.errors import ParseError
from repro.prompts.parser import (
    extract_class_label,
    extract_configuration,
    extract_prediction,
)
from repro.prompts.serialize import serialize_config


class TestExtractPrediction:
    def test_plain_value(self):
        value, text = extract_prediction("0.0022155")
        assert value == pytest.approx(0.0022155)
        assert text == "0.0022155"

    def test_label_echo_tolerated(self):
        value, _ = extract_prediction("Performance: 2.2767\n")
        assert value == pytest.approx(2.2767)

    def test_first_value_wins(self):
        value, _ = extract_prediction("0.5 then 0.9")
        assert value == 0.5

    def test_trailing_prose(self):
        value, _ = extract_prediction("0.003 is my best guess")
        assert value == pytest.approx(0.003)

    def test_integer_fallback(self):
        value, _ = extract_prediction("about 3 seconds")
        assert value == 3.0

    def test_truncated_decimal(self):
        """'0.' parses via the integer fallback ('0')."""
        value, _ = extract_prediction("0. ")
        assert value == 0.0

    def test_no_value_raises(self):
        with pytest.raises(ParseError):
            extract_prediction("no numbers here")

    def test_matched_text_is_copyable(self):
        """The matched substring is what copy analysis compares, so it
        must equal the serialized ICL form when the model copies."""
        _, text = extract_prediction("0.0031921\n")
        assert text == "0.0031921"


class TestExtractClassLabel:
    def test_plain(self):
        assert extract_class_label("3", 5) == 3

    def test_echo(self):
        assert extract_class_label("Performance bucket: 4", 10) == 4

    def test_out_of_range_skipped(self):
        assert extract_class_label("bucket 17 or maybe 2", 5) == 2

    def test_missing_raises(self):
        with pytest.raises(ParseError):
            extract_class_label("none", 5)

    def test_invalid_buckets(self):
        with pytest.raises(ParseError):
            extract_class_label("1", 1)


class TestExtractConfiguration:
    def test_roundtrip(self, space):
        cfg = space.from_index(4321)
        text = serialize_config(cfg, "SM")
        parsed = extract_configuration(text, space)
        assert space.to_index(parsed) == 4321

    def test_incomplete_raises(self, space):
        with pytest.raises(ParseError):
            extract_configuration("first_array_packed is True", space)
