"""Tests for the compute-cost accounting (Section V-C argument)."""

import pytest

from repro.analysis.cost import (
    ContextCostRow,
    GBTCostModel,
    TransformerCostModel,
    context_cost_table,
)
from repro.core import quick_grid, run_grid
from repro.errors import AnalysisError


class TestTransformerCost:
    def test_linear_in_tokens(self):
        m = TransformerCostModel(n_params=1e9)
        assert m.prompt_flops(1000, 0) == pytest.approx(2e12)
        assert m.prompt_flops(2000, 0) == pytest.approx(4e12)

    def test_generation_counted(self):
        m = TransformerCostModel(n_params=1e9)
        assert m.prompt_flops(0, 10) == pytest.approx(2e10)

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            TransformerCostModel().prompt_flops(-1)


class TestGBTCost:
    def test_train_scales_with_rows(self):
        m = GBTCostModel()
        assert m.train_flops(200) == pytest.approx(2 * m.train_flops(100))

    def test_predict_cheap(self):
        m = GBTCostModel()
        assert m.predict_flops(1) < m.train_flops(100)

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            GBTCostModel().train_flops(-1)


class TestContextCostTable:
    @pytest.fixture(scope="class")
    def probes(self):
        return run_grid(
            quick_grid(
                sizes=("SM",), icl_counts=(5, 50), n_sets=1, seeds=(1,),
                n_queries=2,
            ),
            workers=1,
        )

    def test_rows_per_icl_count(self, probes):
        rows = context_cost_table(probes)
        assert [r.n_icl for r in rows] == [5, 50]

    def test_prompt_tokens_grow_with_icl(self, probes):
        rows = context_cost_table(probes)
        assert rows[1].mean_prompt_tokens > rows[0].mean_prompt_tokens

    def test_llm_vastly_more_expensive(self, probes):
        """The Section V-C point: one 8B-model prediction costs orders of
        magnitude more than training the whole GBT on the same examples."""
        rows = context_cost_table(probes)
        for row in rows:
            assert row.llm_overhead_factor > 1e3

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            context_cost_table([])
