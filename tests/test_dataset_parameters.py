"""Tests for parameter domain types."""

import pytest

from repro.dataset.parameters import (
    BooleanParameter,
    CategoricalParameter,
    OrdinalParameter,
    Parameter,
)
from repro.errors import InvalidConfigurationError


class TestParameterBase:
    def test_index_roundtrip(self):
        p = CategoricalParameter("c", ("x", "y", "z"))
        for i, v in enumerate(p.values):
            assert p.index_of(v) == i
            assert p.value_at(i) == v

    def test_out_of_domain(self):
        p = CategoricalParameter("c", ("x",))
        with pytest.raises(InvalidConfigurationError):
            p.index_of("nope")

    def test_unhashable_value_query(self):
        p = CategoricalParameter("c", ("x",))
        assert not p.contains([1, 2])
        with pytest.raises(InvalidConfigurationError):
            p.index_of([1, 2])

    def test_value_at_range(self):
        p = CategoricalParameter("c", ("x", "y"))
        with pytest.raises(InvalidConfigurationError):
            p.value_at(2)
        with pytest.raises(InvalidConfigurationError):
            p.value_at(-1)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            CategoricalParameter("c", ("x", "x"))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CategoricalParameter("c", ())

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            CategoricalParameter("", ("x",))

    def test_iteration_and_len(self):
        p = CategoricalParameter("c", ("x", "y"))
        assert list(p) == ["x", "y"]
        assert len(p) == 2

    def test_equality_and_hash(self):
        a = CategoricalParameter("c", ("x", "y"))
        b = CategoricalParameter("c", ("x", "y"))
        assert a == b and hash(a) == hash(b)
        assert a != CategoricalParameter("c", ("x", "z"))

    def test_distance_categorical(self):
        p = CategoricalParameter("c", ("x", "y", "z"))
        assert p.distance("x", "x") == 0.0
        assert p.distance("x", "z") == 1.0


class TestBooleanParameter:
    def test_domain(self):
        p = BooleanParameter("flag")
        assert p.values == (False, True)
        assert p.index_of(True) == 1

    def test_is_not_numeric(self):
        assert not BooleanParameter("flag").is_numeric


class TestOrdinalParameter:
    def test_requires_ascending(self):
        with pytest.raises(ValueError, match="ascending"):
            OrdinalParameter("t", (4, 2, 8))

    def test_requires_numeric(self):
        with pytest.raises(ValueError, match="numeric"):
            OrdinalParameter("t", ("a", "b"))

    def test_bool_values_rejected(self):
        with pytest.raises(ValueError, match="numeric"):
            OrdinalParameter("t", (False, True))

    def test_rank_distance(self):
        p = OrdinalParameter("t", (4, 8, 16, 32, 64))
        assert p.distance(4, 8) == pytest.approx(0.25)
        assert p.distance(4, 64) == 1.0
        assert p.distance(16, 16) == 0.0

    def test_singleton_distance(self):
        p = OrdinalParameter("t", (4,))
        assert p.distance(4, 4) == 0.0

    def test_is_numeric(self):
        assert OrdinalParameter("t", (1, 2)).is_numeric
