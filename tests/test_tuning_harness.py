"""Tests for the tuner comparison harness."""

import numpy as np
import pytest

from repro.dataset.perfmodel import Syr2kPerformanceModel
from repro.errors import TuningError
from repro.tuning.base import EvaluationBudget, Tuner, TuningHistory
from repro.tuning.harness import compare_tuners, run_tuner
from repro.tuning.random_search import RandomSearchTuner


@pytest.fixture(scope="module")
def sm_model(sm_task):
    return Syr2kPerformanceModel(sm_task)


class _FixedTuner(Tuner):
    """Always proposes index 0 (for harness-contract tests)."""

    name = "fixed"

    def propose(self, history):
        return 0


class _BrokenTuner(Tuner):
    name = "broken"

    def propose(self, history):
        return -1


class TestRunTuner:
    def test_budget_respected(self, space, sm_model):
        result = run_tuner(RandomSearchTuner(space, 0), sm_model, 12)
        assert result.n_evaluations == 12
        assert len(result.history) == 12

    def test_accepts_budget_object(self, space, sm_model):
        result = run_tuner(
            RandomSearchTuner(space, 0), sm_model, EvaluationBudget(5)
        )
        assert result.n_evaluations == 5

    def test_best_consistent(self, space, sm_model):
        result = run_tuner(RandomSearchTuner(space, 0), sm_model, 20)
        assert result.best_runtime == min(result.history.runtimes)
        assert result.best_index in result.history.indices

    def test_measurement_noise_on_repeats(self, space, sm_model):
        """Repeated proposals of the same config see run-to-run variance."""
        result = run_tuner(_FixedTuner(space), sm_model, 5)
        assert len(set(result.history.runtimes)) > 1

    def test_out_of_range_proposal_rejected(self, space, sm_model):
        with pytest.raises(TuningError):
            run_tuner(_BrokenTuner(space), sm_model, 2)

    def test_deterministic(self, space, sm_model):
        a = run_tuner(RandomSearchTuner(space, 5), sm_model, 10)
        b = run_tuner(RandomSearchTuner(space, 5), sm_model, 10)
        assert a.history.indices == b.history.indices
        assert a.history.runtimes == b.history.runtimes


class TestCompare:
    def test_structure(self, space, sm_model):
        cmp = compare_tuners(
            [RandomSearchTuner(space, 0)], sm_model, budget=10, repetitions=2
        )
        assert len(cmp.results["random"]) == 2
        assert cmp.global_optimum > 0
        assert cmp.mean_best("random") >= cmp.global_optimum * 0.9

    def test_mean_curve_monotone(self, space, sm_model):
        cmp = compare_tuners(
            [RandomSearchTuner(space, 0)], sm_model, budget=15, repetitions=2
        )
        curve = cmp.mean_curve("random")
        assert curve.shape == (15,)
        assert (np.diff(curve) <= 1e-12).all()

    def test_ranking_sorted(self, space, sm_model):
        cmp = compare_tuners(
            [RandomSearchTuner(space, 0), _FixedTuner(space)],
            sm_model,
            budget=10,
            repetitions=1,
        )
        ranks = cmp.ranking()
        assert ranks[0][1] <= ranks[1][1]

    def test_regret_nonnegative_in_expectation(self, space, sm_model):
        cmp = compare_tuners(
            [RandomSearchTuner(space, 0)], sm_model, budget=10, repetitions=2
        )
        # regret can be slightly negative only through measurement noise
        assert cmp.mean_regret("random") > -0.1

    def test_invalid_repetitions(self, space, sm_model):
        with pytest.raises(TuningError):
            compare_tuners([RandomSearchTuner(space, 0)], sm_model, 5, 0)

    def test_seed_restored_after_comparison(self, space, sm_model):
        tuner = RandomSearchTuner(space, 123)
        compare_tuners([tuner], sm_model, budget=5, repetitions=2)
        assert tuner.seed == 123
