"""Tests for the tuner comparison harness."""

import numpy as np
import pytest

from repro.dataset.perfmodel import Syr2kPerformanceModel
from repro.errors import TuningError
from repro.tuning.base import EvaluationBudget, Tuner, TuningHistory
from repro.tuning.harness import compare_tuners, run_tuner
from repro.tuning.random_search import RandomSearchTuner


@pytest.fixture(scope="module")
def sm_model(sm_task):
    return Syr2kPerformanceModel(sm_task)


class _FixedTuner(Tuner):
    """Always proposes index 0 (for harness-contract tests)."""

    name = "fixed"

    def propose(self, history):
        return 0


class _BrokenTuner(Tuner):
    name = "broken"

    def propose(self, history):
        return -1


class TestRunTuner:
    def test_budget_respected(self, space, sm_model):
        result = run_tuner(RandomSearchTuner(space, 0), sm_model, 12)
        assert result.n_evaluations == 12
        assert len(result.history) == 12

    def test_accepts_budget_object(self, space, sm_model):
        result = run_tuner(
            RandomSearchTuner(space, 0), sm_model, EvaluationBudget(5)
        )
        assert result.n_evaluations == 5

    def test_best_consistent(self, space, sm_model):
        result = run_tuner(RandomSearchTuner(space, 0), sm_model, 20)
        assert result.best_runtime == min(result.history.runtimes)
        assert result.best_index in result.history.indices

    def test_measurement_noise_on_repeats(self, space, sm_model):
        """Repeated proposals of the same config see run-to-run variance."""
        result = run_tuner(_FixedTuner(space), sm_model, 5)
        assert len(set(result.history.runtimes)) > 1

    def test_out_of_range_proposal_rejected(self, space, sm_model):
        with pytest.raises(TuningError):
            run_tuner(_BrokenTuner(space), sm_model, 2)

    def test_deterministic(self, space, sm_model):
        a = run_tuner(RandomSearchTuner(space, 5), sm_model, 10)
        b = run_tuner(RandomSearchTuner(space, 5), sm_model, 10)
        assert a.history.indices == b.history.indices
        assert a.history.runtimes == b.history.runtimes


class TestCompare:
    def test_structure(self, space, sm_model):
        cmp = compare_tuners(
            [RandomSearchTuner(space, 0)], sm_model, budget=10, repetitions=2
        )
        assert len(cmp.results["random"]) == 2
        assert cmp.global_optimum > 0
        assert cmp.mean_best("random") >= cmp.global_optimum * 0.9

    def test_mean_curve_monotone(self, space, sm_model):
        cmp = compare_tuners(
            [RandomSearchTuner(space, 0)], sm_model, budget=15, repetitions=2
        )
        curve = cmp.mean_curve("random")
        assert curve.shape == (15,)
        assert (np.diff(curve) <= 1e-12).all()

    def test_ranking_sorted(self, space, sm_model):
        cmp = compare_tuners(
            [RandomSearchTuner(space, 0), _FixedTuner(space)],
            sm_model,
            budget=10,
            repetitions=1,
        )
        ranks = cmp.ranking()
        assert ranks[0][1] <= ranks[1][1]

    def test_regret_nonnegative_in_expectation(self, space, sm_model):
        cmp = compare_tuners(
            [RandomSearchTuner(space, 0)], sm_model, budget=10, repetitions=2
        )
        # regret can be slightly negative only through measurement noise
        assert cmp.mean_regret("random") > -0.1

    def test_invalid_repetitions(self, space, sm_model):
        with pytest.raises(TuningError):
            compare_tuners([RandomSearchTuner(space, 0)], sm_model, 5, 0)

    def test_seed_restored_after_comparison(self, space, sm_model):
        tuner = RandomSearchTuner(space, 123)
        compare_tuners([tuner], sm_model, budget=5, repetitions=2)
        assert tuner.seed == 123


class _ExplodingTuner(Tuner):
    name = "exploding"

    def propose(self, history):
        raise ValueError("internal tuner bug")


class TestSeededRuns:
    def test_same_seed_identical_history(self, space, sm_model):
        """The determinism satellite: seed= makes the run a pure
        function of the seed, regardless of tuner construction seeds."""
        a = run_tuner(RandomSearchTuner(space, 1), sm_model, 10, seed=42)
        b = run_tuner(RandomSearchTuner(space, 999), sm_model, 10, seed=42)
        assert a.history.indices == b.history.indices
        assert a.history.runtimes == b.history.runtimes

    def test_different_seeds_differ(self, space, sm_model):
        a = run_tuner(RandomSearchTuner(space, 0), sm_model, 10, seed=1)
        b = run_tuner(RandomSearchTuner(space, 0), sm_model, 10, seed=2)
        assert (
            a.history.indices != b.history.indices
            or a.history.runtimes != b.history.runtimes
        )

    def test_seeded_noise_differs_from_ordinal_noise(self, space, sm_model):
        """Seeded runs decorrelate measurement noise from the bare
        evaluation ordinal (same proposals, different measurements)."""
        plain = run_tuner(_FixedTuner(space), sm_model, 5)
        seeded = run_tuner(_FixedTuner(space), sm_model, 5, seed=3)
        assert plain.history.runtimes != seeded.history.runtimes

    def test_tuner_seed_restored(self, space, sm_model):
        tuner = RandomSearchTuner(space, 123)
        run_tuner(tuner, sm_model, 5, seed=7)
        assert tuner.seed == 123

    def test_seed_restored_on_propose_failure(self, space, sm_model):
        tuner = _ExplodingTuner(space)
        tuner.seed = 55
        with pytest.raises(TuningError):
            run_tuner(tuner, sm_model, 3, seed=7)
        assert tuner.seed == 55

    def test_compare_tuners_seeded_determinism(self, space, sm_model):
        a = compare_tuners(
            [RandomSearchTuner(space, 1)], sm_model, budget=8,
            repetitions=2, seed=9,
        )
        b = compare_tuners(
            [RandomSearchTuner(space, 888)], sm_model, budget=8,
            repetitions=2, seed=9,
        )
        for ra, rb in zip(a.results["random"], b.results["random"]):
            assert ra.history.indices == rb.history.indices
            assert ra.history.runtimes == rb.history.runtimes


class TestErrorSurfacing:
    def test_propose_exception_carries_tuner_name(self, space, sm_model):
        with pytest.raises(TuningError, match="exploding.*propose"):
            run_tuner(_ExplodingTuner(space), sm_model, 3)

    def test_propose_exception_chains_cause(self, space, sm_model):
        with pytest.raises(TuningError) as info:
            run_tuner(_ExplodingTuner(space), sm_model, 3)
        assert isinstance(info.value.__cause__, ValueError)

    def test_zero_budget_rejected_at_construction(self, space, sm_model):
        with pytest.raises(TuningError, match="budget must be >= 1"):
            run_tuner(RandomSearchTuner(space, 0), sm_model, 0)
        with pytest.raises(TuningError, match="budget must be >= 1"):
            EvaluationBudget(-3)
