"""Tests for needle-in-a-haystack error-bound analysis (Section IV-C-1)."""

import numpy as np
import pytest

from repro.analysis.decoding import StepCandidates, enumerate_value_decodings
from repro.analysis.haystack import (
    HaystackReport,
    best_generable_error,
    needle_fractions,
)
from repro.errors import AnalysisError


def _alts(chunks, logits=None):
    steps = [
        StepCandidates(
            tuple(chunks),
            np.asarray(logits if logits is not None else np.zeros(len(chunks))),
            0,
        ),
        StepCandidates(("\n",), np.zeros(1), 0),
    ]
    return enumerate_value_decodings(steps)


class TestNeedleFractions:
    def test_fractions(self):
        errs = [0.05, 0.2, 0.6, 0.009]
        out = needle_fractions(errs, bounds=(0.5, 0.1, 0.01))
        assert out[0.5] == pytest.approx(0.75)
        assert out[0.1] == pytest.approx(0.5)
        assert out[0.01] == pytest.approx(0.25)

    def test_monotone_in_bound(self):
        errs = np.random.default_rng(0).random(100)
        out = needle_fractions(errs)
        assert out[0.5] >= out[0.1] >= out[0.01]

    def test_validation(self):
        with pytest.raises(AnalysisError):
            needle_fractions([])
        with pytest.raises(AnalysisError):
            needle_fractions([-0.1])
        with pytest.raises(AnalysisError):
            needle_fractions([0.1], bounds=(0.0,))


class TestBestGenerable:
    def test_picks_best(self):
        alts = _alts(["1", "2", "3"])
        assert best_generable_error(alts, 2.1) == pytest.approx(0.1 / 2.1)

    def test_zero_truth_rejected(self):
        with pytest.raises(AnalysisError):
            best_generable_error(_alts(["1"]), 0.0)


class TestReport:
    def test_build(self):
        haystacks = [_alts(["1", "2"]), _alts(["5", "9"])]
        truths = [2.0, 9.0]
        sampled_errors = [0.5, 4 / 9]  # sampled "1" and "5"
        report = HaystackReport.build(sampled_errors, haystacks, truths)
        assert report.n == 2
        # both haystacks contain the exact truth -> optimal fraction = 1
        assert report.optimal[0.01] == 1.0
        assert report.sampled[0.01] == 0.0
        assert report.sampled[0.5] == 1.0

    def test_optimal_at_least_sampled(self):
        """A perfect post-hoc decoder can only do better than sampling."""
        rng = np.random.default_rng(3)
        haystacks, truths, errs = [], [], []
        for _ in range(10):
            chunks = [str(rng.integers(1, 9)) for _ in range(4)]
            alts = _alts(list(dict.fromkeys(chunks)))
            truth = float(rng.integers(1, 9))
            haystacks.append(alts)
            truths.append(truth)
            sampled = alts.candidates[0].value
            errs.append(abs(sampled - truth) / truth)
        report = HaystackReport.build(errs, haystacks, truths)
        for b in report.bounds:
            assert report.optimal[b] >= report.sampled[b] - 1e-12

    def test_misaligned_rejected(self):
        with pytest.raises(AnalysisError):
            HaystackReport.build([0.1], [_alts(["1"]), _alts(["2"])], [1.0])
