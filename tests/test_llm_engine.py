"""Tests for the generation engine (end-to-end LM behaviour)."""

import numpy as np
import pytest

from repro.errors import GenerationError
from repro.llm.engine import GenerationEngine


@pytest.fixture(scope="module")
def icl_prompt(tokenizer):
    text = (
        "Here are the examples:\n"
        "Hyperparameter configuration: size is SM, outer_loop_tiling_factor is 80\n"
        "Performance: 0.0022155\n\n"
        "Hyperparameter configuration: size is SM, outer_loop_tiling_factor is 64\n"
        "Performance: 0.0031921\n\n"
        "Please complete the following:\n"
        "Hyperparameter configuration: size is SM, outer_loop_tiling_factor is 128\n"
        "Performance:"
    )
    return np.asarray(tokenizer.encode(text), dtype=np.int64)


class TestGenerate:
    def test_produces_decimal(self, engine, tokenizer, icl_prompt):
        trace = engine.generate(icl_prompt, seed=3)
        text = trace.generated_text(tokenizer.vocab)
        assert any(c.isdigit() for c in text)

    def test_records_all_steps(self, engine, icl_prompt):
        trace = engine.generate(icl_prompt, seed=3)
        assert len(trace.steps) >= 3
        for step in trace.steps:
            assert step.candidate_ids.size == step.logits.size >= 1

    def test_deterministic_per_seed(self, engine, tokenizer, icl_prompt):
        a = engine.generate(icl_prompt, seed=11)
        b = engine.generate(icl_prompt, seed=11)
        assert a.generated_ids == b.generated_ids

    def test_seeds_vary_sampling(self, engine, icl_prompt):
        texts = {
            tuple(engine.generate(icl_prompt, seed=s).generated_ids)
            for s in range(8)
        }
        assert len(texts) > 1

    def test_respects_max_new_tokens(self, lm, icl_prompt):
        short = GenerationEngine(lm, max_new_tokens=2)
        trace = short.generate(icl_prompt, seed=0)
        assert len(trace.steps) <= 2

    def test_stops_after_value(self, engine, tokenizer, icl_prompt):
        """Generation terminates on its own well before the token cap."""
        trace = engine.generate(icl_prompt, seed=3)
        assert len(trace.steps) < engine.max_new_tokens

    def test_empty_prompt_raises(self, engine):
        with pytest.raises(GenerationError):
            engine.generate(np.array([], dtype=np.int64))

    def test_invalid_cap(self, lm):
        with pytest.raises(GenerationError):
            GenerationEngine(lm, max_new_tokens=0)

    def test_value_region_nonempty(self, engine, tokenizer, icl_prompt):
        trace = engine.generate(icl_prompt, seed=3)
        region = trace.value_region(tokenizer.vocab)
        assert region, "generation should contain a numeric value"
        assert region[0].chosen_token.isdigit()
