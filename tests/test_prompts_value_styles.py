"""Tests for value-serialization styles (Section V-B output formats)."""

import pytest

from repro.core.surrogate import DiscriminativeSurrogate
from repro.dataset.splits import disjoint_example_sets
from repro.prompts.builder import PromptBuilder
from repro.prompts.serialize import VALUE_STYLES, format_runtime


class TestScientificStyle:
    def test_format(self):
        assert format_runtime(0.0022155, "scientific") == "2.2155e-03"
        assert format_runtime(2.2767, "scientific") == "2.2767e+00"

    def test_roundtrips_numerically(self):
        for v in (0.0022155, 2.2767, 0.98):
            assert float(format_runtime(v, "scientific")) == pytest.approx(
                v, rel=1e-3
            )

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError, match="unknown value style"):
            format_runtime(1.0, "roman")
        assert set(VALUE_STYLES) == {"decimal", "scientific"}


class TestBuilderStyles:
    def test_style_flows_into_prompt(self, sm_task, tokenizer, sm_dataset):
        builder = PromptBuilder(sm_task, tokenizer, value_style="scientific")
        examples = [
            (sm_dataset.config(i), float(sm_dataset.runtimes[i]))
            for i in range(3)
        ]
        parts = builder.discriminative(examples, sm_dataset.config(99))
        assert all("e-0" in v or "e+0" in v for v in parts.icl_value_strings)
        assert parts.icl_value_strings[0] in parts.text

    def test_invalid_style_fails_at_construction(self, sm_task, tokenizer):
        with pytest.raises(ValueError):
            PromptBuilder(sm_task, tokenizer, value_style="binary")


class TestSurrogateWithScientific:
    def test_generates_and_often_misses_exponent(self, sm_task, sm_dataset):
        """Section V-B's predicted failure: scientific notation destroys
        prefix similarity and the model emits a mantissa without the
        exponent, inflating error by orders of magnitude."""
        surrogate = DiscriminativeSurrogate(
            sm_task, value_style="scientific"
        )
        sets, queries = disjoint_example_sets(
            sm_dataset, 1, 10, seed=8, n_queries=6
        )
        examples = [
            (sm_dataset.config(int(r)), float(sm_dataset.runtimes[int(r)]))
            for r in sets[0]
        ]
        errors = []
        for i, q in enumerate(queries):
            pred = surrogate.predict(
                examples, sm_dataset.config(int(q)), seed=i
            )
            if pred.parsed and pred.value and pred.value > 0:
                truth = float(sm_dataset.runtimes[int(q)])
                errors.append(abs(pred.value - truth) / truth)
        assert errors, "scientific prompts still produce parsable numbers"
        # Mantissa-only outputs are ~1e3 off for SM runtimes.
        assert max(errors) > 10.0
