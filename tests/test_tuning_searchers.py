"""Tests for random search, hill climbing, GP-BO, and the LLM sampler."""

import numpy as np
import pytest

from repro.dataset.perfmodel import Syr2kPerformanceModel
from repro.tuning.base import TuningHistory
from repro.tuning.bo import BayesianOptTuner
from repro.tuning.hill_climb import HillClimbTuner
from repro.tuning.llm_sampler import LLMCandidateTuner
from repro.tuning.random_search import RandomSearchTuner
from repro.errors import TuningError


@pytest.fixture(scope="module")
def sm_model(sm_task):
    return Syr2kPerformanceModel(sm_task)


class TestRandomSearch:
    def test_no_repeats(self, space):
        tuner = RandomSearchTuner(space, seed=0)
        history = TuningHistory()
        for _ in range(50):
            idx = tuner.propose(history)
            assert idx not in history.evaluated
            history.record(idx, 1.0)

    def test_deterministic_after_reset(self, space):
        tuner = RandomSearchTuner(space, seed=0)
        h = TuningHistory()
        first = tuner.propose(h)
        tuner.reset()
        assert tuner.propose(TuningHistory()) == first


class TestHillClimb:
    def test_moves_toward_improvement(self, space):
        """Fed a deterministic objective, the climber's proposals stay in
        the Hamming-1 neighbourhood of the best seen."""
        tuner = HillClimbTuner(space, seed=1)
        history = TuningHistory()
        idx = tuner.propose(history)
        history.record(idx, 1.0)
        nxt = tuner.propose(history)
        assert nxt in space.neighbors(idx)

    def test_restarts_after_exhaustion(self, space):
        tuner = HillClimbTuner(space, seed=1)
        history = TuningHistory()
        incumbent = tuner.propose(history)
        history.record(incumbent, 1.0)
        neighbors = set(space.neighbors(incumbent))
        # Feed worse values for every neighbour -> must eventually restart.
        proposals = set()
        for _ in range(len(neighbors) + 1):
            idx = tuner.propose(history)
            proposals.add(idx)
            history.record(idx, 2.0)
        assert proposals - neighbors  # at least one non-neighbour (restart)

    def test_never_reproposes(self, space):
        tuner = HillClimbTuner(space, seed=2)
        history = TuningHistory()
        for step in range(60):
            idx = tuner.propose(history)
            assert idx not in history.evaluated
            history.record(idx, 1.0 / (step + 1))


class TestBayesianOpt:
    def test_initial_phase_random(self, space):
        tuner = BayesianOptTuner(space, seed=0, n_init=5)
        history = TuningHistory()
        for _ in range(5):
            idx = tuner.propose(history)
            history.record(idx, 1.0)
        assert len(history.evaluated) == 5

    def test_validates_params(self, space):
        with pytest.raises(TuningError):
            BayesianOptTuner(space, n_init=1)
        with pytest.raises(TuningError):
            BayesianOptTuner(space, pool_size=0)

    def test_outperforms_random(self, space, sm_model):
        """Under equal budget, GP-BO finds a configuration at least as
        good as random search on average (3 repetitions)."""
        from repro.tuning.harness import compare_tuners

        cmp = compare_tuners(
            [RandomSearchTuner(space, 7), BayesianOptTuner(space, 7)],
            sm_model,
            budget=35,
            repetitions=3,
        )
        assert cmp.mean_best("gp-bo") <= cmp.mean_best("random") * 1.05

    def test_ei_proposals_unseen(self, space, sm_model):
        tuner = BayesianOptTuner(space, seed=3, n_init=4)
        history = TuningHistory()
        for step in range(12):
            idx = tuner.propose(history)
            assert idx not in history.evaluated
            history.record(idx, float(sm_model.measure([idx], rep=step + 1)[0]))


class TestLLMCandidateTuner:
    def test_initial_random(self, space, sm_task):
        tuner = LLMCandidateTuner(space, sm_task, seed=0, n_init=3)
        history = TuningHistory()
        for _ in range(3):
            idx = tuner.propose(history)
            history.record(idx, 0.002)
        assert tuner.n_proposals == 0  # LM not consulted yet

    def test_llm_consulted_after_init(self, space, sm_task):
        tuner = LLMCandidateTuner(space, sm_task, seed=0, n_init=2)
        history = TuningHistory()
        for step in range(4):
            idx = tuner.propose(history)
            assert 0 <= idx < space.size
            history.record(idx, 0.002 + step * 1e-4)
        assert tuner.n_proposals >= 1
        assert 0.0 <= tuner.fallback_rate <= 1.0

    def test_validates_params(self, space, sm_task):
        with pytest.raises(TuningError):
            LLMCandidateTuner(space, sm_task, target_ratio=0.0)
        with pytest.raises(TuningError):
            LLMCandidateTuner(space, sm_task, n_init=0)
