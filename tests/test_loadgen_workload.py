"""Workload-mix determinism, skew, and attribution pins."""

from __future__ import annotations

import collections

import pytest

from repro.errors import LoadgenError
from repro.loadgen import WorkloadMix, build_workload, workload_digest


MIX = WorkloadMix(n_unique=6, n_tenants=3, seed_lanes=2)


def test_bit_identical_across_builds():
    a = build_workload(MIX, 200, seed=7)
    b = build_workload(MIX, 200, seed=7)
    assert workload_digest(a) == workload_digest(b)
    assert [i.request.seed for i in a] == [i.request.seed for i in b]


def test_seed_sensitivity():
    a = build_workload(MIX, 100, seed=7)
    b = build_workload(MIX, 100, seed=8)
    assert workload_digest(a) != workload_digest(b)


def test_zipf_skew_orders_prompt_popularity():
    items = build_workload(MIX, 2000, seed=3)
    counts = collections.Counter(i.prompt_index for i in items)
    # Rank 0 is the hot head; the tail prompt is markedly colder.
    assert counts[0] > counts[MIX.n_unique - 1] * 2


def test_uniform_when_skew_zero():
    flat = WorkloadMix(n_unique=4, skew=0.0, n_tenants=1, seed_lanes=1)
    items = build_workload(flat, 4000, seed=5)
    counts = collections.Counter(i.prompt_index for i in items)
    assert max(counts.values()) < 1.5 * min(counts.values())


def test_same_prompt_index_shares_prompt_key():
    items = build_workload(MIX, 300, seed=11)
    keys = {}
    for item in items:
        keys.setdefault(item.prompt_index, set()).add(item.request.prompt_key)
    assert all(len(k) == 1 for k in keys.values())
    assert len({next(iter(k)) for k in keys.values()}) == len(keys)


def test_seed_lanes_bound_distinct_request_seeds():
    items = build_workload(MIX, 500, seed=13)
    per_prompt = {}
    for item in items:
        per_prompt.setdefault(item.prompt_index, set()).add(item.request.seed)
    assert all(len(s) <= MIX.seed_lanes for s in per_prompt.values())


def test_tenant_attribution_in_range_and_deterministic():
    items = build_workload(MIX, 150, seed=17)
    tenants = {i.tenant for i in items}
    assert tenants <= {f"tenant-{t}" for t in range(MIX.n_tenants)}
    again = build_workload(MIX, 150, seed=17)
    assert [i.tenant for i in items] == [i.tenant for i in again]


def test_timeout_stamped_on_requests():
    mix = WorkloadMix(n_unique=2, n_tenants=1, seed_lanes=1, timeout_s=1.5)
    items = build_workload(mix, 10, seed=1)
    assert all(i.request.timeout_s == 1.5 for i in items)


def test_empty_workload():
    assert build_workload(MIX, 0, seed=1) == []
    with pytest.raises(LoadgenError):
        build_workload(MIX, -1, seed=1)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"size": "nope"},
        {"n_unique": 0},
        {"n_tenants": 0},
        {"seed_lanes": 0},
        {"skew": -0.1},
        {"timeout_s": 0.0},
    ],
)
def test_invalid_mix_rejected(kwargs):
    with pytest.raises(LoadgenError):
        WorkloadMix(**kwargs)
