"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dataset_args(self):
        args = build_parser().parse_args(
            ["dataset", "--size", "XL", "--output", "x.csv"]
        )
        assert args.command == "dataset" and args.size == "XL"

    def test_invalid_size_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["dataset", "--size", "HUGE", "--output", "x.csv"]
            )


class TestCommands:
    def test_dataset_roundtrip(self, tmp_path, capsys, space):
        out = tmp_path / "sm.csv"
        assert main(["dataset", "--size", "SM", "--output", str(out)]) == 0
        assert out.exists()
        assert "10648 rows" in capsys.readouterr().out
        from repro.dataset.io import load_dataset_csv

        loaded = load_dataset_csv(out, space)
        assert len(loaded) == 10648

    def test_predict(self, capsys):
        assert main(["predict", "--size", "SM", "--n-icl", "5",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "parsed" in out and "truth" in out

    def test_grid_small(self, capsys):
        assert main([
            "grid", "--sizes", "SM", "--icl", "2", "5", "--sets", "1",
            "--seeds", "1", "--queries", "2", "--workers", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "best R2" in out
        assert "error vs ICL count" in out

    def test_tune(self, capsys):
        assert main([
            "tune", "--size", "SM", "--budget", "10", "--repetitions", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "gp-bo" in out and "random" in out

    def test_table1(self, capsys):
        assert main(["table1", "--sizes", "SM", "--train", "100"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "SM" in out

    def test_grid_save_then_report(self, tmp_path, capsys):
        path = tmp_path / "probes.jsonl"
        assert main([
            "grid", "--sizes", "SM", "--icl", "3", "--sets", "1",
            "--seeds", "1", "--queries", "2", "--workers", "1",
            "--save", str(path),
        ]) == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Prediction quality (IV-A)" in out
        assert "Needles in a haystack" in out


class TestServeCommands:
    def test_grid_through_service(self, capsys):
        assert main([
            "grid", "--sizes", "SM", "--icl", "2", "--sets", "1",
            "--seeds", "1", "--queries", "2", "--serve",
        ]) == 0
        captured = capsys.readouterr()
        assert "best R2" in captured.out
        assert "served" in captured.err and "req/s" in captured.err

    def test_serve_bench(self, capsys):
        assert main([
            "serve-bench", "--size", "SM", "--n-icl", "2", "--unique", "2",
            "--repeats", "2", "--batch-size", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "caches on" in out and "caches off" in out
        assert "p95 latency" in out
        assert "result-cache hit rate" in out
        assert "caching speedup" in out

    def test_serve_bench_no_baseline(self, capsys):
        assert main([
            "serve-bench", "--size", "SM", "--n-icl", "2", "--unique", "2",
            "--repeats", "2", "--no-baseline",
        ]) == 0
        out = capsys.readouterr().out
        assert "caches on" in out and "caches off" not in out


class TestObservabilityCommands:
    def test_serve_bench_trace_then_summarize(self, tmp_path, capsys):
        """The acceptance path: bench with --trace, then reconstruct."""
        trace = tmp_path / "out.jsonl"
        assert main([
            "serve-bench", "--size", "SM", "--n-icl", "2", "--unique", "2",
            "--repeats", "2", "--no-baseline", "--trace", str(trace),
        ]) == 0
        captured = capsys.readouterr()
        assert trace.exists()
        assert "exported" in captured.err and "spans" in captured.err

        assert main(["trace", "summarize", str(trace), "--tree", "1"]) == 0
        out = capsys.readouterr().out
        # The per-stage breakdown covers the wired span taxonomy...
        for stage in ("serve.request", "serve.queue_wait",
                      "serve.cache_lookup", "serve.generate"):
            assert stage in out
        # ...and the sample tree shows one request's nested spans.
        assert "request_id=" in out

    def test_serve_bench_untraced_writes_no_file(self, tmp_path, capsys):
        assert main([
            "serve-bench", "--size", "SM", "--n-icl", "2", "--unique", "2",
            "--repeats", "2", "--no-baseline",
        ]) == 0
        capsys.readouterr()
        assert not list(tmp_path.iterdir())

    def test_serve_bench_metrics_table(self, capsys):
        assert main([
            "serve-bench", "--size", "SM", "--n-icl", "2", "--unique", "2",
            "--repeats", "2", "--no-baseline", "--metrics",
        ]) == 0
        out = capsys.readouterr().out
        assert "metrics registry" in out
        assert "serve.requests{event=completed}" in out
        assert "cache.lookups{level=result,outcome=hit}" in out

    def test_trace_summarize_empty_file_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", "summarize", str(empty)]) == 1
        assert "no spans" in capsys.readouterr().err

    def test_chaos_verify_determinism(self, capsys):
        """Chaos determinism holds with degraded serves interleaved."""
        assert main([
            "chaos", "--size", "SM", "--n-icl", "2", "--requests", "16",
            "--unique", "4", "--latency-s", "0.001", "--stall-s", "0.001",
            "--verify-determinism",
        ]) == 0
        out = capsys.readouterr().out
        assert "deterministic across two identical runs: yes" in out
        assert (
            "deterministic with degraded cache serves interleaved: yes"
            in out
        )


class TestSessionsCommand:
    def test_parser_accepts_actions(self):
        args = build_parser().parse_args(
            ["sessions", "run", "--tenants", "2", "--budget", "4"]
        )
        assert args.command == "sessions" and args.action == "run"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sessions", "restart"])

    def test_status_and_resume_require_log(self, capsys):
        assert main(["sessions", "status"]) == 2
        assert main(["sessions", "resume"]) == 2

    def test_run_status_resume_cycle(self, tmp_path, capsys):
        log = str(tmp_path / "sessions.jsonl")
        assert main([
            "sessions", "run", "--tenants", "2", "--budget", "4",
            "--log", log, "--max-evaluations", "3",
            "--min-fairness", "0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "fairness (Jain)" in out

        assert main(["sessions", "status", "--log", log]) == 0
        out = capsys.readouterr().out
        assert "PAUSED" in out

        assert main(["sessions", "resume", "--log", log]) == 0
        out = capsys.readouterr().out
        assert out.count("DONE") == 2

    def test_run_fairness_gate_fails(self, capsys):
        # an impossible fairness bar (> 1.0) must exit nonzero
        assert main([
            "sessions", "run", "--tenants", "2", "--budget", "2",
            "--min-fairness", "1.5",
        ]) == 1

    def test_run_resilient_and_metrics(self, capsys):
        assert main([
            "sessions", "run", "--tenants", "2", "--budget", "2",
            "--resilient", "--metrics",
        ]) == 0
        out = capsys.readouterr().out
        assert "sessions.fairness_jain" in out

    def test_chaos_sessions_smoke(self, capsys):
        assert main([
            "chaos", "--sessions", "--requests", "12", "--seed", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "campaign completion: 100.00%" in out
        assert "no lost or duplicated evaluations" in out


class TestFsckCommand:
    def events_file(self, tmp_path, n=4):
        from repro.core.storage import append_events_jsonl

        path = tmp_path / "events.jsonl"
        append_events_jsonl(
            [{"event": "eval", "step": i} for i in range(n)],
            path, kind="fsck-test",
        )
        return path

    def test_parser_accepts_fsck(self):
        args = build_parser().parse_args(
            ["fsck", "--repair", "--strict", "--kind", "events", "x.jsonl"]
        )
        assert args.command == "fsck"
        assert args.repair and args.strict
        assert args.paths == ["x.jsonl"]

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = self.events_file(tmp_path)
        assert main(["fsck", str(path)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_damaged_file_exits_one(self, tmp_path, capsys):
        path = self.events_file(tmp_path)
        with path.open("a") as fh:
            fh.write("garbage\n")
        assert main(["fsck", str(path)]) == 1
        assert "CORRUPTION FOUND" in capsys.readouterr().out

    def test_repair_fixes_and_exits_zero(self, tmp_path, capsys):
        path = self.events_file(tmp_path)
        with path.open("a") as fh:
            fh.write("garbage\n")
        assert main(["fsck", "--repair", str(path)]) == 0
        assert "repaired" in capsys.readouterr().out
        assert main(["fsck", str(path)]) == 0
        assert (tmp_path / "events.jsonl.quarantine").exists()

    def test_repair_strict_reports_damage(self, tmp_path):
        path = self.events_file(tmp_path)
        with path.open("a") as fh:
            fh.write("garbage\n")
        assert main(["fsck", "--repair", "--strict", str(path)]) == 1

    def test_unrecoverable_exits_two(self, tmp_path, capsys):
        path = tmp_path / "junk.jsonl"
        path.write_text("????\n")
        assert main(["fsck", str(path)]) == 2
        assert "unrecoverable" in capsys.readouterr().out

    def test_multiple_paths_worst_exit_wins(self, tmp_path):
        good = self.events_file(tmp_path)
        bad = tmp_path / "junk.jsonl"
        bad.write_text("????\n")
        assert main(["fsck", str(good), str(bad)]) == 2

    def test_parser_accepts_chaos_disk(self):
        args = build_parser().parse_args(["chaos", "--disk"])
        assert args.disk


class TestLoadtestCommand:
    FAST = [
        "loadtest", "--arrival", "constant", "--rps", "30",
        "--duration", "0.5", "--seed", "3", "--unique", "2",
        "--seed-lanes", "1", "--no-warmup",
    ]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["loadtest"])
        assert args.arrival == "poisson"
        assert args.mode == "open"
        assert args.slo == "default"
        assert args.warmup is True

    def test_parser_rejects_unknown_arrival(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadtest", "--arrival", "uniform"])

    def test_open_loop_passes_default_slo(self, capsys):
        assert main(self.FAST) == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        assert "schedule digest" in out

    def test_report_json_round_trips(self, tmp_path, capsys):
        from repro.loadgen import SLOReport

        path = tmp_path / "report.json"
        assert main(self.FAST + ["--report-json", str(path)]) == 0
        report = SLOReport.from_json(path.read_text())
        assert report.offered == 15
        assert report.ok == 15
        assert report.goodput == 1.0

    def test_closed_loop_and_metrics(self, capsys):
        assert main(self.FAST + ["--mode", "closed", "--concurrency", "2",
                                 "--metrics"]) == 0
        assert "loadgen.goodput" in capsys.readouterr().out

    def test_check_determinism_passes(self, capsys):
        assert main(self.FAST + ["--check-determinism"]) == 0
        assert "determinism check passed" in capsys.readouterr().err

    def test_slo_violation_exits_one(self, tmp_path, capsys):
        policy = tmp_path / "strict.json"
        policy.write_text('{"max_p50_ms": 0.0001}')
        assert main(self.FAST + ["--slo", str(policy)]) == 1
        assert "SLO VIOLATION" in capsys.readouterr().err

    def test_slo_off_never_gates(self, tmp_path, capsys):
        assert main(self.FAST + ["--slo", "off"]) == 0
        assert "SLO check" not in capsys.readouterr().err

    def test_sessions_ride_along(self, capsys):
        assert main(self.FAST + ["--sessions", "2",
                                 "--session-budget", "2"]) == 0
        assert "campaigns" in capsys.readouterr().out

    def test_trace_export(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(self.FAST + ["--trace", str(trace)]) == 0
        body = trace.read_text()
        assert "loadgen.run" in body


class TestTelemetryCommands:
    FAST = TestLoadtestCommand.FAST

    def test_loadtest_telemetry_export_then_top(self, tmp_path, capsys):
        """The pipeline path: sampled load → framed timeline → dashboard."""
        timeline = tmp_path / "telemetry.jsonl"
        assert main(self.FAST + [
            "--telemetry", str(timeline), "--telemetry-interval", "0.1",
        ]) == 0
        captured = capsys.readouterr()
        assert "telemetry records" in captured.err
        assert timeline.exists()

        assert main(["top", str(timeline), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "qps (completed)" in out
        assert "timeline:" in out and "max gap" in out

    def test_top_live_mode_honors_refresh_limit(self, tmp_path, capsys):
        timeline = tmp_path / "telemetry.jsonl"
        assert main(self.FAST + [
            "--telemetry", str(timeline), "--telemetry-interval", "0.1",
        ]) == 0
        capsys.readouterr()
        assert main(["top", str(timeline), "--interval", "0.01",
                     "--refresh-limit", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("\x1b[2J") == 2

    def test_telemetry_file_is_fsck_clean(self, tmp_path, capsys):
        timeline = tmp_path / "telemetry.jsonl"
        assert main(self.FAST + ["--telemetry", str(timeline)]) == 0
        capsys.readouterr()
        assert main(["fsck", "--strict", str(timeline)]) == 0
        out = capsys.readouterr().out
        assert "events:telemetry" in out and "clean" in out

    def test_trace_flame_writes_both_formats(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(self.FAST + ["--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace", "flame", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "folded call paths" in out
        assert "speedscope profiles" in out
        folded = tmp_path / "trace.jsonl.folded"
        speedscope = tmp_path / "trace.jsonl.speedscope.json"
        assert folded.exists() and speedscope.exists()
        assert "loadgen.run" in folded.read_text()
        import json as _json

        doc = _json.loads(speedscope.read_text())
        assert doc["profiles"]

    def test_trace_flame_explicit_output_paths(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(self.FAST + ["--trace", str(trace)]) == 0
        capsys.readouterr()
        folded = tmp_path / "out.folded"
        speedscope = tmp_path / "out.json"
        assert main(["trace", "flame", str(trace),
                     "--folded", str(folded),
                     "--speedscope", str(speedscope)]) == 0
        capsys.readouterr()
        assert folded.exists() and speedscope.exists()

    def test_chaos_reports_telemetry_liveness(self, capsys):
        assert main([
            "chaos", "--size", "SM", "--n-icl", "2", "--requests", "12",
            "--unique", "4", "--latency-s", "0.001", "--stall-s", "0.001",
            "--telemetry-drop-rate", "0.15", "--telemetry-dup-rate", "0.1",
            "--verify-determinism",
        ]) == 0
        out = capsys.readouterr().out
        assert "telemetry liveness" in out
        assert "VIOLATED" not in out
        assert "deterministic across two identical runs: yes" in out
