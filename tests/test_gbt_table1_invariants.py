"""Statistical invariants of the GBT baseline on the paper's task.

These pin the Table-I *shape* at unit-test scale (the full sweep lives in
the benchmark): learning curves rise, XL dominates SM, log-space targets
beat raw-space ones on relative metrics.
"""

import numpy as np
import pytest

from repro.analysis import score_predictions
from repro.dataset.splits import train_test_split
from repro.gbt import (
    BoostingParams,
    FeatureEncoder,
    GradientBoostingRegressor,
    TargetTransform,
)


def _fit_score(dataset, n_train, transform="log", seed=1):
    train, test = train_test_split(dataset, 0.8, seed=seed)
    sub = train.subset(np.arange(n_train))
    enc = FeatureEncoder(dataset.space)
    tt = TargetTransform(transform)
    model = GradientBoostingRegressor(
        BoostingParams(n_estimators=120, learning_rate=0.1, max_depth=5,
                       min_samples_leaf=2)
    ).fit(enc.encode_dataset(sub), tt.forward(sub.runtimes))
    pred = tt.inverse(model.predict(enc.encode_dataset(test)))
    pred = np.maximum(pred, 1e-9)
    return score_predictions(test.runtimes, pred)


class TestLearningCurve:
    def test_more_data_helps_sm(self, sm_dataset):
        small = _fit_score(sm_dataset, 150)
        large = _fit_score(sm_dataset, 1500)
        assert large.r2 > small.r2
        assert large.mare < small.mare

    def test_xl_easier_than_sm(self, sm_dataset, xl_dataset):
        sm = _fit_score(sm_dataset, 500)
        xl = _fit_score(xl_dataset, 500)
        assert xl.r2 > sm.r2
        assert xl.mare < sm.mare

    def test_log_target_improves_relative_error(self, sm_dataset):
        """Runtimes are multiplicative; log-space fitting is how the
        baseline reaches Table-I-class MARE."""
        raw = _fit_score(sm_dataset, 800, transform="identity")
        log = _fit_score(sm_dataset, 800, transform="log")
        assert log.mare <= raw.mare * 1.1

    def test_split_seed_stability(self, sm_dataset):
        """Scores are stable (same ballpark) across split seeds."""
        a = _fit_score(sm_dataset, 800, seed=1)
        b = _fit_score(sm_dataset, 800, seed=2)
        assert abs(a.r2 - b.r2) < 0.15
