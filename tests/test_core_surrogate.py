"""Tests for the discriminative surrogate."""

import pytest

from repro.core.surrogate import DiscriminativeSurrogate


@pytest.fixture(scope="module")
def surrogate(sm_task):
    return DiscriminativeSurrogate(sm_task)


@pytest.fixture(scope="module")
def examples(sm_dataset):
    return [
        (sm_dataset.config(i), float(sm_dataset.runtimes[i]))
        for i in range(0, 100, 10)
    ]


class TestPredict:
    def test_basic_prediction(self, surrogate, examples, sm_dataset):
        pred = surrogate.predict(examples, sm_dataset.config(500), seed=1)
        assert pred.parsed
        assert pred.value > 0
        assert pred.value_text in pred.generated_text

    def test_prediction_in_plausible_range(self, surrogate, examples, sm_dataset):
        """Predictions should be SM-scale (sub-second), showing the model
        at least absorbed magnitude from context."""
        pred = surrogate.predict(examples, sm_dataset.config(500), seed=2)
        assert pred.value is not None and pred.value < 1.0

    def test_deterministic(self, surrogate, examples, sm_dataset):
        a = surrogate.predict(examples, sm_dataset.config(500), seed=9)
        b = surrogate.predict(examples, sm_dataset.config(500), seed=9)
        assert a.generated_text == b.generated_text

    def test_seed_sensitivity(self, surrogate, examples, sm_dataset):
        texts = {
            surrogate.predict(examples, sm_dataset.config(500), seed=s).generated_text
            for s in range(6)
        }
        assert len(texts) > 1

    def test_icl_values_recorded(self, surrogate, examples, sm_dataset):
        pred = surrogate.predict(examples, sm_dataset.config(500), seed=1)
        assert len(pred.icl_value_strings) == len(examples)

    def test_value_steps_available(self, surrogate, examples, sm_dataset):
        pred = surrogate.predict(examples, sm_dataset.config(500), seed=1)
        assert pred.value_steps
        assert pred.value_steps[0].chosen_token.isdigit()

    def test_exact_copy_flag(self, surrogate, examples, sm_dataset):
        pred = surrogate.predict(examples, sm_dataset.config(500), seed=1)
        expected = pred.value_text in pred.icl_value_strings
        assert pred.exact_copy == expected

    def test_prompt_token_count(self, surrogate, examples, sm_dataset):
        pred = surrogate.predict(examples, sm_dataset.config(500), seed=1)
        assert pred.n_prompt_tokens > 500
