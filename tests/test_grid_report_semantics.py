"""Semantics of the grid report against hand-constructed probe sets."""

import numpy as np
import pytest

from repro.core.grid import ExperimentSpec
from repro.core.records import build_report
from repro.core.runner import ProbeResult


def _probe(n_icl, seed, truth, predicted, selection="random", size="SM",
           copy=False, set_id=0):
    spec = ExperimentSpec(size, selection, n_icl, set_id, seed, n_queries=1)
    return ProbeResult(
        spec=spec,
        query_index=0,
        truth=truth,
        predicted=predicted,
        predicted_text="" if predicted is None else str(predicted),
        generated_text="",
        exact_copy=copy,
        icl_value_strings=[],
        value_steps=[],
        n_prompt_tokens=100,
    )


class TestReportSemantics:
    def test_perfect_predictor_r2_one(self):
        probes = [
            _probe(5, 1, t, t) for t in (1.0, 2.0, 3.0, 4.0)
        ] + [
            _probe(5, 2, t, t) for t in (1.0, 2.0, 3.0, 4.0)
        ]
        report = build_report(probes)
        assert report.best_r2 == pytest.approx(1.0)
        assert report.mean_r2 == pytest.approx(1.0)
        assert report.frac_nonnegative_r2 == 1.0
        assert report.mare.mean == 0.0

    def test_constant_predictor_negative_r2(self):
        """Predicting the ICL mean regardless of query: near-zero R2."""
        truths = [1.0, 2.0, 3.0, 4.0]
        const = float(np.mean(truths))
        probes = [_probe(5, 1, t, const) for t in truths]
        report = build_report(probes)
        assert report.best_r2 == pytest.approx(0.0, abs=1e-9)

    def test_anti_predictor_strongly_negative(self):
        probes = [_probe(5, 1, t, 5.0 - t) for t in (1.0, 2.0, 3.0, 4.0)]
        report = build_report(probes)
        assert report.best_r2 < -1.0

    def test_copy_rate_counts_all_probes(self):
        probes = [
            _probe(5, 1, 1.0, 1.0, copy=True),
            _probe(5, 1, 2.0, 2.0, copy=False),
            _probe(5, 1, 3.0, None, copy=False),
            _probe(5, 1, 4.0, 4.0, copy=False),
        ]
        report = build_report(probes)
        assert report.copy_rate == pytest.approx(0.25)
        assert report.parse_rate == pytest.approx(0.75)

    def test_selection_kept_separate(self):
        probes = [
            _probe(5, 1, t, t, selection="random")
            for t in (1.0, 2.0, 3.0)
        ] + [
            _probe(5, 1, t, 4.0 - t, selection="curated")
            for t in (1.0, 2.0, 3.0)
        ]
        report = build_report(probes)
        r2s = sorted(float(v) for v in report.r2_values)
        assert r2s[0] < 0 < r2s[1] == 1.0

    def test_per_icl_mare_ordering(self):
        probes = [
            _probe(1, 1, 1.0, 2.0), _probe(1, 1, 2.0, 4.0),   # MARE 1.0
            _probe(50, 1, 1.0, 1.1), _probe(50, 1, 2.0, 2.2), # MARE 0.1
        ]
        report = build_report(probes)
        assert report.per_icl_mare[1] == pytest.approx(1.0)
        assert report.per_icl_mare[50] == pytest.approx(0.1)
