"""Tests for :mod:`repro.obs.tracer`: spans, nesting, export, globals.

The two properties everything else leans on are pinned here: tracing is
off by default (the global tracer is a disabled singleton, so the
instrumented hot paths record nothing), and parent/child structure
survives both same-thread nesting and the explicit cross-thread handoff
the microbatcher uses.
"""

import threading
import time

import pytest

from repro.obs import (
    NULL_TRACER,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)


class TestOffByDefault:
    def test_global_default_is_disabled(self):
        assert get_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("outer", a=1) as span:
            span.set(b=2)
            with tracer.span("inner"):
                pass
        assert tracer.record_span("retro", 0.0, 1.0) is None
        assert len(tracer) == 0

    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")
        assert tracer.span("a").span_id is None

    def test_use_tracer_scopes_and_restores(self):
        tracer = Tracer()
        before = get_tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
            with get_tracer().span("scoped"):
                pass
        assert get_tracer() is before
        assert [s.name for s in tracer.spans()] == ["scoped"]

    def test_set_tracer_none_restores_null(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER
        assert previous is NULL_TRACER


class TestNesting:
    def test_same_thread_implicit_parenting(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("sibling"):
                pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["root"].parent_id is None
        assert by_name["child"].parent_id == by_name["root"].span_id
        assert by_name["grandchild"].parent_id == by_name["child"].span_id
        assert by_name["sibling"].parent_id == by_name["root"].span_id

    def test_explicit_parent_crosses_threads(self):
        """The ticket handoff pattern: caller span id → worker span."""
        tracer = Tracer()
        with tracer.span("caller") as caller:
            parent_id = tracer.current_span_id()
            assert parent_id == caller.span_id

            def worker():
                # A fresh thread has no implicit stack; the explicit
                # parent is what links the spans across the hop.
                assert tracer.current_span_id() is None
                with tracer.span("worker", parent=parent_id):
                    pass

            t = threading.Thread(target=worker)
            t.start()
            t.join()
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["worker"].parent_id == by_name["caller"].span_id

    def test_parent_none_forces_root(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("detached", parent=None):
                pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["detached"].parent_id is None

    def test_threads_nest_independently(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work(name):
            with tracer.span(f"{name}.outer"):
                barrier.wait()
                with tracer.span(f"{name}.inner"):
                    pass

        threads = [
            threading.Thread(target=work, args=(n,)) for n in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["a.inner"].parent_id == by_name["a.outer"].span_id
        assert by_name["b.inner"].parent_id == by_name["b.outer"].span_id


class TestSpanRecords:
    def test_duration_and_attributes(self):
        tracer = Tracer()
        with tracer.span("timed", phase="x") as span:
            time.sleep(0.01)
            span.set(extra=3)
        (record,) = tracer.spans()
        assert record.duration_s >= 0.01
        assert record.attributes == {"phase": "x", "extra": 3}
        assert record.end_s == record.start_s + record.duration_s

    def test_backdated_start(self):
        tracer = Tracer()
        enqueued = time.monotonic() - 0.5
        with tracer.span("request", start_s=enqueued):
            pass
        (record,) = tracer.spans()
        assert record.start_s == enqueued
        assert record.duration_s >= 0.5

    def test_record_span_retroactive(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            tracer.record_span("wait", 10.0, 10.25, parent=root.span_id)
        by_name = {s.name: s for s in tracer.spans()}
        wait = by_name["wait"]
        assert wait.parent_id == by_name["root"].span_id
        assert wait.start_s == 10.0
        assert wait.duration_s == pytest.approx(0.25)

    def test_exception_sets_error_attribute(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        (record,) = tracer.spans()
        assert record.attributes["error"] == "RuntimeError"

    def test_clear_keeps_ids_monotonic(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        first_id = tracer.spans()[0].span_id
        tracer.clear()
        assert len(tracer) == 0
        with tracer.span("b"):
            pass
        assert tracer.spans()[0].span_id > first_id


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        from repro.obs import load_spans

        tracer = Tracer()
        with tracer.span("root", kind="bench"):
            with tracer.span("child"):
                pass
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 2
        loaded = load_spans(path)
        assert [s.to_dict() for s in loaded] == [
            s.to_dict() for s in tracer.spans()
        ]

    def test_span_dict_round_trip(self):
        span = Span(
            name="s", span_id=7, parent_id=3, start_s=1.5,
            duration_s=0.5, attributes={"k": "v"},
        )
        assert Span.from_dict(span.to_dict()) == span

    def test_load_rejects_malformed_line(self, tmp_path):
        from repro.obs import load_spans

        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "ok", "span_id": 1, "parent_id": null, '
                        '"start_s": 0, "duration_s": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_spans(path)

    def test_concurrent_collection_is_complete(self):
        tracer = Tracer()
        n_threads, per_thread = 8, 25

        def work(tid):
            for i in range(per_thread):
                with tracer.span("op", tid=tid, i=i):
                    pass

        threads = [
            threading.Thread(target=work, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tracer.spans()
        assert len(spans) == n_threads * per_thread
        assert len({s.span_id for s in spans}) == len(spans)
