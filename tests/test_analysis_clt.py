"""Tests for CLT aggregation."""

import numpy as np
import pytest

from repro.analysis.clt import aggregate_metric


class TestAggregateMetric:
    def test_basic_stats(self):
        agg = aggregate_metric([1.0, 2.0, 3.0])
        assert agg.mean == pytest.approx(2.0)
        assert agg.std == pytest.approx(1.0)
        assert agg.n == 3
        assert agg.sem == pytest.approx(1.0 / np.sqrt(3))

    def test_ci_contains_mean(self):
        agg = aggregate_metric([0.3, 0.4, 0.35, 0.5])
        assert agg.ci_low <= agg.mean <= agg.ci_high

    def test_ci_shrinks_with_n(self):
        rng = np.random.default_rng(0)
        small = aggregate_metric(rng.normal(0, 1, 10))
        large = aggregate_metric(rng.normal(0, 1, 1000))
        assert (large.ci_high - large.ci_low) < (small.ci_high - small.ci_low)

    def test_clt_convergence(self):
        """The grand mean converges to the true expectation."""
        rng = np.random.default_rng(1)
        values = rng.exponential(0.36, 5000)
        agg = aggregate_metric(values)
        assert abs(agg.mean - 0.36) < 0.02
        assert agg.ci_low < 0.36 < agg.ci_high

    def test_single_value(self):
        agg = aggregate_metric([5.0])
        assert agg.mean == 5.0 and agg.std == 0.0 and agg.sem == 0.0
        assert agg.ci_low == agg.ci_high == 5.0

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            aggregate_metric([1.0, float("inf")])
        with pytest.raises(ValueError):
            aggregate_metric([float("nan")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_metric([])

    def test_bad_confidence(self):
        with pytest.raises(ValueError):
            aggregate_metric([1.0, 2.0], confidence=1.5)

    def test_str(self):
        assert "+/-" in str(aggregate_metric([1.0, 2.0]))
