"""Shared fixtures: session-scoped datasets and LM stacks.

Dataset generation and vocabulary construction are deterministic but not
free; sharing them across tests keeps the suite fast without coupling
tests (all shared objects are treated as read-only).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset import Syr2kTask, generate_dataset, syr2k_space
from repro.llm import GenerationEngine, SurrogateLM, Tokenizer


@pytest.fixture(scope="session")
def space():
    return syr2k_space()


@pytest.fixture(scope="session")
def sm_dataset():
    return generate_dataset("SM")


@pytest.fixture(scope="session")
def xl_dataset():
    return generate_dataset("XL")


@pytest.fixture(scope="session")
def sm_task():
    return Syr2kTask("SM")


@pytest.fixture(scope="session")
def xl_task():
    return Syr2kTask("XL")


@pytest.fixture(scope="session")
def tokenizer():
    return Tokenizer()


@pytest.fixture(scope="session")
def lm(tokenizer):
    return SurrogateLM(tokenizer.vocab)


@pytest.fixture(scope="session")
def engine(lm):
    return GenerationEngine(lm)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
