"""End-to-end engine behaviour across all three prompt modes."""

import numpy as np
import pytest

from repro.dataset import GemmTask, generate_dataset
from repro.llm import GenerationEngine
from repro.prompts import PromptBuilder, extract_prediction
from repro.errors import ParseError


@pytest.fixture(scope="module")
def sm_examples(sm_dataset):
    return [
        (sm_dataset.config(i), float(sm_dataset.runtimes[i]))
        for i in range(0, 60, 6)
    ]


class TestDiscriminativeMode(object):
    def test_gemm_prompt_generates_value(self, sm_examples, tokenizer, lm):
        """The pipeline is kernel-agnostic: GEMM prompts also yield values."""
        task = GemmTask("SM")
        ds = generate_dataset(task, indices=range(200))
        builder = PromptBuilder(task, tokenizer)
        examples = [
            (ds.config(i), float(ds.runtimes[i])) for i in range(0, 40, 4)
        ]
        parts = builder.discriminative(examples, ds.config(100))
        trace = GenerationEngine(lm).generate(parts.ids, seed=1)
        text = trace.generated_text(tokenizer.vocab)
        value, _ = extract_prediction(text)
        assert 0 <= value < 1.0


class TestGenerativeMode:
    def test_bucket_output_is_bare_integer(
        self, sm_task, sm_dataset, tokenizer, lm
    ):
        builder = PromptBuilder(sm_task, tokenizer)
        examples = [(sm_dataset.config(i), i % 4) for i in range(12)]
        parts = builder.generative(examples, sm_dataset.config(99), n_buckets=4)
        trace = GenerationEngine(lm).generate(parts.ids, seed=2)
        text = trace.generated_text(tokenizer.vocab)
        # The integer-valued format analysis should stop after digits: the
        # value region is short and dot-free.
        region = trace.value_region(tokenizer.vocab)
        assert region
        assert all(s.chosen_token != "." for s in region)


class TestCandidateMode:
    def test_generation_runs_and_is_recorded(
        self, sm_task, sm_dataset, sm_examples, tokenizer, lm
    ):
        builder = PromptBuilder(sm_task, tokenizer)
        parts = builder.candidate_sampling(sm_examples, 0.0015)
        engine = GenerationEngine(lm, max_new_tokens=48)
        trace = engine.generate(parts.ids, seed=3)
        assert len(trace.steps) >= 1
        # Candidate-mode outputs rarely parse into full configurations
        # (the measured failure mode); either outcome is a valid state.
        text = trace.generated_text(tokenizer.vocab)
        from repro.prompts import extract_configuration

        try:
            config = extract_configuration(text, sm_dataset.space)
        except ParseError:
            config = None
        if config is not None:
            sm_dataset.space.validate(config)
