"""Smoke tests: every example script imports cleanly and exposes main().

Full example execution is exercised manually / in CI-nightly; here we
guarantee the scripts stay importable against the public API (no stale
imports after refactors) without paying their runtime.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)  # imports only; main() not called
    finally:
        sys.modules.pop(spec.name, None)
    assert hasattr(module, "main"), f"{path.name} must define main()"
    assert callable(module.main)
    assert module.__doc__, f"{path.name} must document what it shows"


def test_expected_example_set_present():
    names = {p.stem for p in EXAMPLE_FILES}
    required = {
        "quickstart",
        "llm_vs_xgboost",
        "logit_anatomy",
        "autotune_syr2k",
        "icl_scaling",
        "fixing_the_failure",
        "cross_kernel_transfer",
    }
    assert required <= names
