"""Tests for cross-process trace stitching (tracer absorb + shard wiring).

The distributed-tracing contract: shard workers trace in disjoint
span-id blocks (:func:`worker_id_start`), parent their spans to ids
carried in the request messages, and ship records back over the result
pipe; the parent absorbs them into ONE tree.  Pinned here:

* absorb is order-independent — children may arrive before parents;
* orphaned spans (a SIGKILLed shard never ships the enclosing span)
  render as marked-lost roots instead of crashing the tooling;
* parent-id integrity holds across shard counts {0, 1, 4}: every span
  in a live trace resolves to a recorded parent, and the sharded tree
  nests submit → roundtrip/worker → request → prepare/generate.
"""

import pytest

from repro.errors import ShardError
from repro.obs import (
    Span,
    Tracer,
    render_span_tree,
    span_children,
    summarize_spans,
    use_tracer,
    worker_id_start,
)
from repro.serve import Request, make_service


@pytest.fixture(scope="module")
def examples(sm_dataset):
    return [
        (sm_dataset.config(i), float(sm_dataset.runtimes[i]))
        for i in range(4)
    ]


def _request(sm_dataset, examples, query=42, seed=0):
    return Request(
        examples=examples,
        query_config=sm_dataset.config(query),
        seed=seed,
        size="SM",
    )


def _orphans(spans):
    known = {s.span_id for s in spans}
    return [
        s for s in spans
        if s.parent_id is not None and s.parent_id not in known
    ]


class TestWorkerIdBlocks:
    def test_blocks_are_disjoint_across_shards_and_generations(self):
        starts = sorted(
            worker_id_start(shard, gen)
            for shard in range(8)
            for gen in range(4)
        )
        assert len(set(starts)) == len(starts)
        # Each (shard, generation) owns a 2^28-id block.
        assert all(b - a >= (1 << 28) for a, b in zip(starts, starts[1:]))

    def test_parent_ids_sit_below_every_worker_block(self):
        lowest = worker_id_start(0, 0)
        tracer = Tracer()
        for _ in range(1000):
            with tracer.span("parent"):
                pass
        assert max(s.span_id for s in tracer.spans()) < lowest


class TestAbsorb:
    def _worker_records(self, parent_id, id_start):
        """Drained records of a worker trace parented to ``parent_id``."""
        worker = Tracer(id_start=id_start)
        with worker.span("shard.worker", parent=parent_id):
            with worker.span("serve.request"):
                with worker.span("serve.generate"):
                    pass
        return worker.drain()

    def test_out_of_order_arrival_still_stitches(self):
        parent = Tracer()
        with parent.span("shard.submit") as root:
            records = self._worker_records(
                root.span_id, worker_id_start(0, 0)
            )
        # Ship the deepest spans first: a late pipe drain can deliver a
        # child batch before the batch holding its parent.
        records.sort(key=lambda rec: rec[1], reverse=True)
        for record in records:
            parent.absorb([record])
        spans = parent.spans()
        assert _orphans(spans) == []
        by_name = {s.name: s for s in spans}
        assert by_name["shard.worker"].parent_id == \
            by_name["shard.submit"].span_id
        assert by_name["serve.request"].parent_id == \
            by_name["shard.worker"].span_id
        tree = render_span_tree(spans)
        assert "!orphan" not in tree

    def test_absorb_applies_clock_offset(self):
        parent = Tracer()
        records = self._worker_records(None, worker_id_start(1, 0))
        parent.absorb(records, offset_s=100.0)
        assert all(s.start_s >= 100.0 for s in parent.spans())

    def test_absorbed_ids_do_not_collide_across_respawns(self):
        parent = Tracer()
        with parent.span("shard.submit") as root:
            pass
        for gen in range(3):
            parent.absorb(
                self._worker_records(
                    root.span_id, worker_id_start(0, gen)
                )
            )
        spans = parent.spans()
        assert len({s.span_id for s in spans}) == len(spans)
        assert _orphans(spans) == []


class TestOrphanRendering:
    def _lossy_trace(self):
        """A stitched trace whose worker-side parent never shipped."""
        lost_parent = worker_id_start(0, 0) + 7
        return [
            Span("shard.submit", 1, None, 0.0, 0.001),
            Span("serve.request", lost_parent + 1, lost_parent, 0.0, 0.02),
            Span("serve.generate", lost_parent + 2, lost_parent + 1,
                 0.01, 0.005),
        ]

    def test_orphan_marked_lost_not_crashing(self):
        spans = self._lossy_trace()
        tree = render_span_tree(spans, max_roots=10)
        lost = worker_id_start(0, 0) + 7
        assert f"!orphan(parent={lost} lost)" in tree
        # The orphan's own subtree still renders beneath it.
        assert "serve.generate" in tree

    def test_orphan_becomes_root_in_children_map(self):
        spans = self._lossy_trace()
        roots = span_children(spans)[None]
        assert {s.name for s in roots} == {"shard.submit", "serve.request"}

    def test_summary_counts_orphaned_stages(self):
        summary = summarize_spans(self._lossy_trace())
        rendered = summary.render()
        assert "serve.generate" in rendered


@pytest.mark.parametrize("shards", [0, 1, 4])
class TestLiveParentIntegrity:
    """One stitched tree per shard count, no lost parentage."""

    def _trace(self, shards, sm_dataset, examples):
        tracer = Tracer()
        with use_tracer(tracer):
            with make_service(shards=shards, max_batch_size=4) as service:
                futures = [
                    service.submit_async(
                        _request(sm_dataset, examples, query=q, seed=0)
                    )
                    for q in (40, 41, 42)
                ]
                for future in futures:
                    future.result(timeout=120)
        return tracer.spans()

    def test_every_parent_resolves(self, shards, sm_dataset, examples):
        spans = self._trace(shards, sm_dataset, examples)
        assert spans
        assert len({s.span_id for s in spans}) == len(spans)
        assert _orphans(spans) == []

        names = {s.name for s in spans}
        by_id = {s.span_id: s for s in spans}
        if shards == 0:
            assert "serve.request" in names
            assert not any(n.startswith("shard.") for n in names)
            return
        # Sharded: submit → roundtrip (parent side) + worker-side
        # subtree, worker span ids inside their namespaced blocks.
        assert {"shard.submit", "shard.roundtrip", "shard.worker",
                "serve.request", "serve.generate"} <= names
        lowest_block = worker_id_start(0, 0)
        for span in spans:
            if span.name == "shard.worker":
                assert span.span_id >= lowest_block
                parent = by_id[span.parent_id]
                assert parent.name == "shard.submit"
                assert parent.span_id < lowest_block
            if span.name == "shard.roundtrip":
                assert by_id[span.parent_id].name == "shard.submit"
            if span.name == "serve.request":
                assert by_id[span.parent_id].name == "shard.worker"


@pytest.mark.chaos
class TestKilledShardOrphans:
    def test_tooling_survives_a_sigkilled_shard(
        self, sm_dataset, examples
    ):
        tracer = Tracer()
        with use_tracer(tracer):
            with make_service(
                shards=2, max_batch_size=4, max_restarts=2
            ) as service:
                futures = [
                    service.submit_async(
                        _request(sm_dataset, examples, query=q, seed=s)
                    )
                    for s in range(2)
                    for q in (40, 41, 42)
                ]
                service.kill_shard(0)
                service.kill_shard(1)
                for future in futures:
                    try:
                        future.result(timeout=120)
                    except ShardError:
                        pass
                # The respawned shards serve a second wave, so the trace
                # mixes lost-generation and healthy spans.
                for q in (40, 41):
                    service.submit(_request(sm_dataset, examples, query=q))
        spans = tracer.spans()
        assert spans
        # The analysis tooling must digest the lossy trace whole.
        tree = render_span_tree(spans, max_roots=len(spans))
        summarize_spans(spans).render()
        for orphan in _orphans(spans):
            assert f"!orphan(parent={orphan.parent_id} lost)" in tree
