"""Tests for the vocabulary."""

import pytest

from repro.errors import VocabularyError
from repro.llm.vocab import Vocabulary, build_default_vocabulary


@pytest.fixture(scope="module")
def vocab():
    return build_default_vocabulary()


class TestConstruction:
    def test_specials_present(self, vocab):
        sp = vocab.specials
        assert vocab.string_of(sp.begin_of_text) == "<|begin_of_text|>"
        assert vocab.string_of(sp.eot) == "<|eot_id|>"

    def test_digit_tokens_complete(self, vocab):
        """All 1-, 2- and 3-digit strings exist (1110 total)."""
        assert len(vocab.digit_token_ids) == 10 + 100 + 1000
        for s in ("0", "07", "002", "999"):
            assert s in vocab

    def test_byte_fallback_complete(self, vocab):
        for b in (0, 127, 255):
            tid = vocab.byte_id(b)
            assert vocab.is_byte(tid)
            assert vocab.decode_bytes(tid) == bytes([b])

    def test_duplicate_rejected(self):
        tokens = ["<|begin_of_text|>"] * 2
        with pytest.raises(VocabularyError, match="duplicate"):
            Vocabulary(tokens)

    def test_missing_special_rejected(self):
        with pytest.raises(VocabularyError):
            Vocabulary(["a", "b"])

    def test_deterministic_order(self):
        a = build_default_vocabulary()
        b = build_default_vocabulary()
        assert len(a) == len(b)
        assert a.id_of("Performance") == b.id_of("Performance")


class TestLookup:
    def test_roundtrip(self, vocab):
        tid = vocab.id_of("configuration")
        assert vocab.string_of(tid) == "configuration"

    def test_unknown_token(self, vocab):
        with pytest.raises(VocabularyError):
            vocab.id_of("zzzzzz_not_here")

    def test_out_of_range_id(self, vocab):
        with pytest.raises(VocabularyError):
            vocab.string_of(len(vocab))

    def test_bad_byte(self, vocab):
        with pytest.raises(VocabularyError):
            vocab.byte_id(256)

    def test_is_special(self, vocab):
        assert vocab.is_special(vocab.specials.eot)
        assert not vocab.is_special(vocab.id_of("0"))

    def test_decode_bytes_on_regular_token(self, vocab):
        with pytest.raises(VocabularyError):
            vocab.decode_bytes(vocab.id_of("0"))

    def test_dot_and_newline(self, vocab):
        assert vocab.string_of(vocab.dot_id) == "."
        assert vocab.string_of(vocab.newline_id) == "\n"

    def test_domain_words_present(self, vocab):
        """Every word the Figure-1 prompt uses tokenizes as one piece."""
        for w in ("Hyperparameter", "Performance", "configuration",
                  "interchange", "tiling", "packed", "SM", "XL"):
            assert w in vocab
            assert " " + w in vocab
