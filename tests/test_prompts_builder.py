"""Tests for prompt assembly."""

import numpy as np
import pytest

from repro.errors import PromptError
from repro.prompts.builder import PromptBuilder


@pytest.fixture(scope="module")
def builder(sm_task, tokenizer):
    return PromptBuilder(sm_task, tokenizer)


@pytest.fixture(scope="module")
def examples(sm_dataset):
    return [
        (sm_dataset.config(i), float(sm_dataset.runtimes[i]))
        for i in range(5)
    ]


class TestDiscriminative:
    def test_structure(self, builder, examples, sm_dataset):
        parts = builder.discriminative(examples, sm_dataset.config(100))
        text = parts.text
        assert text.startswith("<|begin_of_text|>")
        assert "<|start_header_id|>system<|end_header_id|>" in text
        assert "Here are the examples:" in text
        assert "Please complete the following:" in text
        assert text.endswith("<|start_header_id|>assistant<|end_header_id|>\n\n")
        # The query block is open-ended.
        assert text.rstrip().split("Performance:")[-1].startswith("<|eot_id|>")

    def test_icl_values_tracked(self, builder, examples, sm_dataset):
        parts = builder.discriminative(examples, sm_dataset.config(100))
        assert len(parts.icl_value_strings) == 5
        assert parts.n_examples == 5
        for v in parts.icl_value_strings:
            assert v in parts.text

    def test_ids_decode_to_text(self, builder, examples, sm_dataset, tokenizer):
        parts = builder.discriminative(examples, sm_dataset.config(100))
        assert tokenizer.decode(parts.ids) == parts.text

    def test_empty_examples_rejected(self, builder, sm_dataset):
        with pytest.raises(PromptError):
            builder.discriminative([], sm_dataset.config(0))

    def test_prompt_grows_with_examples(self, builder, sm_dataset):
        ex = [
            (sm_dataset.config(i), float(sm_dataset.runtimes[i]))
            for i in range(50)
        ]
        small = builder.discriminative(ex[:5], sm_dataset.config(100))
        large = builder.discriminative(ex, sm_dataset.config(100))
        assert large.ids.size > small.ids.size


class TestGenerative:
    def test_bucket_labels(self, builder, sm_dataset):
        ex = [(sm_dataset.config(i), i % 5) for i in range(5)]
        parts = builder.generative(ex, sm_dataset.config(100), n_buckets=5)
        assert "Performance bucket:" in parts.text
        assert "discretized into 5 buckets" in parts.text
        assert parts.icl_value_strings == ["0", "1", "2", "3", "4"]

    def test_bucket_range_checked(self, builder, sm_dataset):
        with pytest.raises(PromptError):
            builder.generative(
                [(sm_dataset.config(0), 9)], sm_dataset.config(1), n_buckets=5
            )

    def test_needs_two_buckets(self, builder, sm_dataset):
        with pytest.raises(PromptError):
            builder.generative(
                [(sm_dataset.config(0), 0)], sm_dataset.config(1), n_buckets=1
            )


class TestCandidateSampling:
    def test_target_in_prompt(self, builder, examples):
        parts = builder.candidate_sampling(examples, 0.002)
        assert "Performance: 0.0020000" in parts.text
        assert parts.text.rstrip().split("\n")[-1].startswith(
            "Hyperparameter configuration:"
        ) or "Hyperparameter configuration:<|eot_id|>" in parts.text

    def test_empty_examples_rejected(self, builder):
        with pytest.raises(PromptError):
            builder.candidate_sampling([], 0.002)
