"""Tests for the process-pool helpers."""

import os

import pytest

from repro.utils.parallel import effective_workers, parallel_map


def _square(x):
    return x * x


class TestEffectiveWorkers:
    def test_default_capped(self):
        w = effective_workers(None)
        assert 1 <= w <= 16

    def test_explicit_respected(self):
        assert effective_workers(1) == 1

    def test_capped_by_cores(self):
        cores = os.cpu_count() or 1
        assert effective_workers(10_000) <= cores

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            effective_workers(0)


class TestParallelMap:
    def test_empty(self):
        assert parallel_map(_square, []) == []

    def test_serial_small(self):
        assert parallel_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_parallel_preserves_order(self):
        items = list(range(40))
        out = parallel_map(_square, items, workers=2)
        assert out == [x * x for x in items]

    def test_results_match_serial(self):
        items = list(range(25))
        assert parallel_map(_square, items, workers=2) == parallel_map(
            _square, items, workers=1
        )
