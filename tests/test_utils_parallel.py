"""Tests for the worker-pool helpers."""

import os

import pytest

import repro.utils.parallel as parallel_mod
from repro.utils.parallel import (
    _SERIAL_THRESHOLD,
    DEFAULT_WORKER_CAP,
    effective_workers,
    mp_context,
    parallel_map,
)


def _square(x):
    return x * x


class TestEffectiveWorkers:
    def test_default_capped(self):
        w = effective_workers(None)
        assert 1 <= w <= DEFAULT_WORKER_CAP

    def test_explicit_respected(self):
        assert effective_workers(1) == 1

    def test_capped_by_cores(self):
        cores = os.cpu_count() or 1
        assert effective_workers(10_000) <= cores

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            effective_workers(0)

    def test_clamp_is_symmetric(self):
        """Explicit requests and the default hit the *same* ceiling."""
        limit = effective_workers(None)
        assert effective_workers(10_000) == limit

    def test_custom_cap(self):
        cores = os.cpu_count() or 1
        assert effective_workers(None, cap=2) <= 2
        assert effective_workers(8, cap=2) == min(2, cores)

    def test_cap_none_leaves_core_clamp(self):
        cores = os.cpu_count() or 1
        assert effective_workers(None, cap=None) == cores
        assert effective_workers(10_000, cap=None) == cores

    def test_oversubscription_opt_out(self):
        """Explicit counts bypass both clamps when oversubscribing."""
        assert effective_workers(500, allow_oversubscription=True) == 500

    def test_oversubscription_does_not_change_default(self):
        assert effective_workers(
            None, allow_oversubscription=True
        ) == effective_workers(None)

    def test_clamp_logged(self, caplog):
        import logging

        with caplog.at_level(logging.DEBUG, logger="repro.utils.parallel"):
            effective_workers(10_000)
        assert any("clamping" in r.message for r in caplog.records)


class TestParallelMap:
    def test_empty(self):
        assert parallel_map(_square, []) == []

    def test_serial_small(self):
        assert parallel_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_parallel_preserves_order(self):
        items = list(range(40))
        out = parallel_map(_square, items, workers=2)
        assert out == [x * x for x in items]

    def test_results_match_serial(self):
        items = list(range(25))
        assert parallel_map(_square, items, workers=2) == parallel_map(
            _square, items, workers=1
        )

    def test_thread_executor_parity(self):
        items = list(range(25))
        assert parallel_map(
            _square, items, workers=2, executor="thread"
        ) == [x * x for x in items]

    def test_unknown_executor(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1], executor="fiber")

    def test_oversubscribed_processes_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1], oversubscribe=True)

    def test_oversubscribed_threads(self):
        items = list(range(10))
        out = parallel_map(
            _square, items, workers=8, executor="thread", oversubscribe=True
        )
        assert out == [x * x for x in items]


class TestMpContext:
    def test_never_fork(self):
        """Pools must start workers from a clean interpreter: fork would
        copy locks held by other threads into the child, locked forever."""
        assert mp_context().get_start_method() in {"forkserver", "spawn"}

    def test_stable_across_calls(self):
        assert (
            mp_context().get_start_method()
            == mp_context().get_start_method()
        )

    def test_pool_fans_out_beside_live_service(self, monkeypatch):
        """Regression: a process pool spawned while a threaded
        PredictionService is live must not inherit its held locks.
        Under ``fork`` the scheduler/cache mutexes are copied locked
        into the children and the pool hangs; spawn/forkserver boots
        clean interpreters.  (cpu_count is patched so the pool engages
        even on a single-core host.)"""
        from repro.serve import PredictionService

        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 4)
        with PredictionService(max_batch_size=2):
            items = list(range(8))
            out = parallel_map(
                _square, items, workers=2, executor="process"
            )
        assert out == [x * x for x in items]


class TestSerialFastPaths:
    """The no-pool paths must never construct an executor."""

    @pytest.fixture()
    def forbid_pools(self, monkeypatch):
        def _boom(*a, **kw):  # pragma: no cover - only on regression
            raise AssertionError("worker pool constructed on a serial path")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", _boom)
        monkeypatch.setattr(parallel_mod, "ThreadPoolExecutor", _boom)

    def test_workers_one_never_pools(self, forbid_pools):
        items = list(range(_SERIAL_THRESHOLD * 3))
        assert parallel_map(_square, items, workers=1) == [
            x * x for x in items
        ]

    def test_below_threshold_never_pools(self, forbid_pools):
        items = list(range(_SERIAL_THRESHOLD - 1))
        assert parallel_map(_square, items, workers=4) == [
            x * x for x in items
        ]

    def test_at_threshold_uses_pool(self, monkeypatch):
        """Exactly _SERIAL_THRESHOLD items with >1 workers goes parallel."""
        used = {}

        class Recorder:
            def __init__(self, max_workers=None, **kw):
                used["max_workers"] = max_workers
                self._n = max_workers

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def map(self, fn, items, chunksize=1):
                return map(fn, items)

        monkeypatch.setattr(parallel_mod, "ThreadPoolExecutor", Recorder)
        items = list(range(_SERIAL_THRESHOLD))
        # Oversubscribed threads so the pool engages even on 1 core.
        out = parallel_map(
            _square, items, workers=2, executor="thread", oversubscribe=True
        )
        assert out == [x * x for x in items]
        assert used["max_workers"] == 2
