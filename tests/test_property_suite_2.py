"""Second property-test round: learner, space, and sampler invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataset import syr2k_space
from repro.gbt.boosting import BoostingParams, GradientBoostingRegressor
from repro.llm.sampling import SamplingParams, sample_token
from repro.utils.rng import rng_from

_SPACE = syr2k_space()


class TestGBTProperties:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_predictions_within_target_range(self, seed):
        """Tree ensembles interpolate: with a modest learning rate the
        predictions stay inside (min(y), max(y)) padded by the residual
        overshoot bound."""
        rng = np.random.default_rng(seed)
        x = rng.random((120, 3))
        y = rng.random(120) * 4.0 + 1.0
        model = GradientBoostingRegressor(
            BoostingParams(n_estimators=40, learning_rate=0.2, max_depth=3)
        ).fit(x, y)
        pred = model.predict(rng.random((60, 3)))
        span = y.max() - y.min()
        assert pred.min() > y.min() - 0.5 * span
        assert pred.max() < y.max() + 0.5 * span

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_constant_target_learned_exactly(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.random((50, 2))
        y = np.full(50, 3.25)
        model = GradientBoostingRegressor(
            BoostingParams(n_estimators=5)
        ).fit(x, y)
        np.testing.assert_allclose(model.predict(x), 3.25, atol=1e-9)


class TestSpaceProperties:
    @given(
        st.integers(min_value=0, max_value=_SPACE.size - 1),
        st.integers(min_value=0, max_value=_SPACE.size - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_distance_symmetry_and_identity(self, i, j):
        a, b = _SPACE.from_index(i), _SPACE.from_index(j)
        dij = _SPACE.weighted_distance(a, b)
        dji = _SPACE.weighted_distance(b, a)
        assert dij == pytest.approx(dji)
        assert (dij == 0) == (i == j)
        assert _SPACE.hamming_distance(a, b) == _SPACE.hamming_distance(b, a)

    @given(st.integers(min_value=0, max_value=_SPACE.size - 1))
    @settings(max_examples=20, deadline=None)
    def test_hamming_bounds_weighted(self, i):
        """Weighted distance never exceeds Hamming distance (each term is
        normalized to [0, 1])."""
        center = _SPACE.from_index(i)
        for j in (0, _SPACE.size // 2, _SPACE.size - 1):
            other = _SPACE.from_index(j)
            assert _SPACE.weighted_distance(center, other) <= (
                _SPACE.hamming_distance(center, other) + 1e-12
            )


class TestSamplingProperties:
    @given(
        st.lists(
            st.floats(min_value=-5, max_value=5, allow_nan=False),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_sample_always_valid_position(self, logits, seed):
        ids = np.arange(len(logits))
        rng = rng_from(seed, "prop")
        pos = sample_token(
            ids, np.asarray(logits), SamplingParams(), rng
        )
        assert 0 <= pos < len(logits)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_greedy_never_random(self, seed):
        logits = np.asarray([0.0, 2.0, 1.0])
        rng = rng_from(seed, "greedy")
        pos = sample_token(
            np.arange(3), logits, SamplingParams(greedy=True), rng
        )
        assert pos == 1
