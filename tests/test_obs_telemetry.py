"""Tests for :mod:`repro.obs.telemetry`: sampler, alerts, timeline I/O.

Pins the contracts the chaos drill and the nightly soak lean on: the
payload ``seq`` proves completeness independent of the storage framing,
injected drops/dups are detected on reload, burn-rate alerts fire on the
rising edge only, and the liveness metric (:func:`max_sample_gap_s`)
charges sampler stalls but not injector-dropped exports.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.obs import (
    BurnRatePolicy,
    TelemetrySampler,
    deterministic_fields,
    load_telemetry,
    max_sample_gap_s,
)


def _counting_collector(values):
    """A collector replaying scripted (error, total) pairs per scrape."""
    it = iter(values)

    def collect(registry):
        err, total = next(it)
        registry.counter("resilience.unavailable").set_absolute(err)
        registry.counter(
            "serve.requests", event="submitted"
        ).set_absolute(total)

    return collect


class TestSampler:
    def test_manual_samples_are_sequenced(self):
        sampler = TelemetrySampler(1.0)
        sampler.add_collector(
            "const", lambda reg: reg.gauge("x").set(1.0)
        )
        first = sampler.sample()
        second = sampler.sample()
        assert first["seq"] == 0 and second["seq"] == 1
        assert first["metrics"]["x"] == 1.0
        assert first["t_mono"] <= second["t_mono"]

    def test_ring_capacity_drops_oldest(self):
        sampler = TelemetrySampler(1.0, capacity=3)
        for _ in range(5):
            sampler.sample()
        records = sampler.records()
        assert len(records) == 3
        assert [r["seq"] for r in records] == [2, 3, 4]

    def test_sick_collector_is_counted_not_fatal(self):
        sampler = TelemetrySampler(1.0)

        def sick(registry):
            raise RuntimeError("scrape failed")

        sampler.add_collector("sick", sick)
        sampler.add_collector("ok", lambda reg: reg.gauge("x").set(2.0))
        record = sampler.sample()
        assert record["metrics"]["x"] == 2.0
        assert sampler.scrape_errors == 1

    def test_background_thread_samples_on_cadence(self):
        import time

        sampler = TelemetrySampler(0.02)
        sampler.add_collector("t", lambda reg: reg.gauge("x").set(1.0))
        with sampler:
            time.sleep(0.12)
        records = sampler.records()
        # start + ~6 periodic + final; generous bounds for CI jitter.
        assert 3 <= len(records) <= 12
        assert max_sample_gap_s(records) < 0.5

    def test_stop_is_idempotent(self):
        sampler = TelemetrySampler(0.02)
        sampler.start()
        sampler.stop(final_sample=True)
        before = len(sampler.records())
        sampler.stop(final_sample=False)
        assert len(sampler.records()) == before

    def test_interval_and_capacity_validation(self):
        with pytest.raises(ValueError, match="interval_s"):
            TelemetrySampler(0.0)
        with pytest.raises(ValueError, match="capacity"):
            TelemetrySampler(1.0, capacity=1)


class TestBurnRateAlerts:
    def test_alert_on_rising_edge_only(self):
        # Error rate jumps from 0 to 50% against a 1% objective: both
        # windows burn hot from the second sample on, but only the
        # transition emits an alert record.
        sampler = TelemetrySampler(1.0, policy=BurnRatePolicy())
        sampler.add_collector(
            "slo",
            _counting_collector(
                [(0, 100), (50, 200), (100, 300), (150, 400)]
            ),
        )
        for _ in range(4):
            sampler.sample()
        records = sampler.records()
        alerts = [r for r in records if r["type"] == "alert"]
        assert len(alerts) == 1
        assert alerts[0]["alert"] == "slo-burn"
        assert alerts[0]["short_burn"] > 2.0
        assert alerts[0]["long_burn"] > 2.0

    def test_no_alert_within_budget(self):
        sampler = TelemetrySampler(1.0, policy=BurnRatePolicy())
        sampler.add_collector(
            "slo", _counting_collector([(0, 100), (0, 200), (1, 400)])
        )
        for _ in range(3):
            sampler.sample()
        assert not [
            r for r in sampler.records() if r["type"] == "alert"
        ]

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="objective"):
            BurnRatePolicy(objective=0.0)
        with pytest.raises(ValueError, match="short_window_s"):
            BurnRatePolicy(short_window_s=10.0, long_window_s=5.0)
        with pytest.raises(ValueError, match="threshold"):
            BurnRatePolicy(threshold=0.0)


class TestInjectedFates:
    def _sampler(self, **rates):
        injector = FaultInjector(FaultPlan(seed=3, **rates))
        sampler = TelemetrySampler(1.0, injector=injector)
        sampler.add_collector("t", lambda reg: reg.gauge("x").set(1.0))
        return sampler, injector

    def test_drop_consumes_seq(self):
        sampler, injector = self._sampler(telemetry_drop_rate=0.3)
        results = [sampler.sample() for _ in range(20)]
        drops = sum(1 for r in results if r is None)
        assert drops == injector.stats.snapshot()["telemetry_drops"] > 0
        seqs = [r["seq"] for r in sampler.records()]
        # Dropped seqs are holes, never reused.
        assert len(set(seqs)) == len(seqs) == 20 - drops

    def test_dup_records_twice(self):
        sampler, injector = self._sampler(telemetry_dup_rate=0.3)
        for _ in range(20):
            sampler.sample()
        dups = injector.stats.snapshot()["telemetry_dups"]
        assert dups > 0
        assert len(sampler.records()) == 20 + dups

    def test_fates_follow_the_plan_seed(self):
        plan = FaultPlan(seed=5, telemetry_drop_rate=0.2,
                         telemetry_dup_rate=0.2)
        fates = [FaultInjector(plan).on_telemetry_sample(i)
                 for i in range(50)]
        again = [FaultInjector(plan).on_telemetry_sample(i)
                 for i in range(50)]
        assert fates == again
        assert {"drop", "dup", "keep"} >= set(fates)


class TestTimelineIO:
    def test_framed_round_trip_and_fsck(self, tmp_path):
        from repro.core.storage import verify_artifact

        sampler = TelemetrySampler(1.0, policy=BurnRatePolicy())
        sampler.add_collector(
            "slo", _counting_collector([(0, 100), (50, 200), (99, 300)])
        )
        for _ in range(3):
            sampler.sample()
        path = tmp_path / "telemetry.jsonl"
        n = sampler.export_jsonl(path)
        timeline = load_telemetry(path)
        assert len(timeline) == n
        assert timeline.report.n_samples == 3
        assert timeline.report.n_alerts == 1
        assert timeline.report.n_dropped == 0
        assert timeline.report.n_duplicates == 0
        report = verify_artifact(path)
        assert report.clean
        assert report.kind == "events:telemetry"

    def test_load_accounts_for_drops_and_dups(self, tmp_path):
        injector = FaultInjector(
            FaultPlan(seed=3, telemetry_drop_rate=0.25,
                      telemetry_dup_rate=0.25)
        )
        sampler = TelemetrySampler(1.0, injector=injector)
        sampler.add_collector("t", lambda reg: reg.gauge("x").set(1.0))
        for _ in range(30):
            sampler.sample()
        path = tmp_path / "lossy.jsonl"
        sampler.export_jsonl(path)
        timeline = load_telemetry(path)
        snap = injector.stats.snapshot()
        assert timeline.report.n_duplicates == snap["telemetry_dups"] > 0
        # Range-based accounting cannot see a drop at the seq boundary,
        # so the detected count is a lower bound on the injected one.
        assert 0 < timeline.report.n_dropped <= snap["telemetry_drops"]
        seqs = [r["seq"] for r in timeline]
        assert seqs == sorted(set(seqs))


class TestLiveness:
    @staticmethod
    def _sample(seq, t):
        return {"type": "sample", "seq": seq, "t_mono": t, "metrics": {}}

    def test_plain_gap(self):
        records = [self._sample(0, 0.0), self._sample(1, 0.25),
                   self._sample(2, 0.8)]
        assert max_sample_gap_s(records) == pytest.approx(0.55)

    def test_injected_drop_normalizes_by_seq_distance(self):
        # seq 1 was dropped: 0.5s across two ticks is a healthy 0.25s/tick.
        records = [self._sample(0, 0.0), self._sample(2, 0.5),
                   self._sample(3, 0.75)]
        assert max_sample_gap_s(records) == pytest.approx(0.25)

    def test_alert_seqs_do_not_dilute_the_gap(self):
        # seq 1 is an alert (same instant as sample 0), not a sampler tick.
        records = [
            self._sample(0, 0.0),
            {"type": "alert", "seq": 1, "t_mono": 0.0},
            self._sample(2, 0.6),
        ]
        assert max_sample_gap_s(records) == pytest.approx(0.6)

    def test_duplicates_and_short_timelines(self):
        assert max_sample_gap_s([]) == 0.0
        assert max_sample_gap_s([self._sample(0, 0.0)]) == 0.0
        dup = [self._sample(0, 0.0), self._sample(0, 0.0),
               self._sample(1, 0.3)]
        assert max_sample_gap_s(dup) == pytest.approx(0.3)


class TestDeterministicFields:
    def test_selects_fault_and_resilience_keys_only(self):
        records = [{
            "type": "sample", "seq": 0, "t_mono": 0.0,
            "metrics": {
                "faults.injected{kind=shard_kills}": 2,
                "faults.injected{kind=telemetry_drops}": 3,
                "resilience.unavailable": 1,
                "resilience.availability": 0.97,
                "serve.requests{event=completed}": 41,
                "loadgen.goodput": 0.9,
            },
        }]
        fields = deterministic_fields(records)
        assert fields == {
            "faults.injected{kind=shard_kills}": 2,
            "resilience.unavailable": 1,
        }

    def test_empty_without_samples(self):
        assert deterministic_fields([]) == {}
        assert deterministic_fields(
            [{"type": "alert", "seq": 0, "t_mono": 0.0}]
        ) == {}
