"""Tests for the fixed prompt templates."""

from repro.dataset.syr2k import SIZE_NAMES, Syr2kTask
from repro.prompts.templates import (
    SYSTEM_INSTRUCTIONS,
    SYSTEM_INSTRUCTIONS_CANDIDATE,
    SYSTEM_INSTRUCTIONS_GENERATIVE,
    problem_description,
)


class TestSystemInstructions:
    def test_figure1_phrases(self):
        assert "Do NOT explain your thought process" in SYSTEM_INSTRUCTIONS
        assert "feature-rich text-based CSV format" in SYSTEM_INSTRUCTIONS
        assert "Do not alter the user's proposed configurations" in (
            SYSTEM_INSTRUCTIONS
        )

    def test_generative_mentions_buckets(self):
        assert "bucket" in SYSTEM_INSTRUCTIONS_GENERATIVE

    def test_candidate_asks_for_configuration(self):
        assert "propose one hyperparameter configuration" in (
            SYSTEM_INSTRUCTIONS_CANDIDATE
        )


class TestProblemDescription:
    def test_sm_dimensions(self):
        desc = problem_description(Syr2kTask("SM"))
        assert "For size 'SM', M=130 and N=160" in desc

    def test_size_scale_enumerated(self):
        desc = problem_description(Syr2kTask("SM"))
        assert ", ".join(SIZE_NAMES) in desc

    def test_tunables_listed(self):
        desc = problem_description(Syr2kTask("XL"))
        for phrase in (
            "independently packed",
            "interchanged",
            "tiled",
            "lower is better",
        ):
            assert phrase in desc

    def test_pseudocode_present(self):
        desc = problem_description(Syr2kTask("SM"))
        assert "for i=0 to N in tiles of size outer_loop_tiling_factor" in desc
        assert "C[i,k] = A[k,j]*alpha*B[i,j] + B[k,j]*alpha*A[i,j]" in desc

    def test_size_invariance_stated(self):
        desc = problem_description(Syr2kTask("SM"))
        assert "Size is NOT a tunable component" in desc
