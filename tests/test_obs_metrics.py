"""Tests for :mod:`repro.obs.metrics`: instruments, registry, collection.

The registry's job is unification: one vocabulary over what
``StatsRecorder``, ``LRUCache``, ``FaultInjector.stats`` and
``CircuitBreaker.trips`` each count separately.  The collection test
drives a real service and checks the mapped values agree with the
original sources.
"""

import threading

import numpy as np
import pytest

from repro.obs import MetricsRegistry, collect_service_metrics


class TestInstruments:
    def test_counter_accumulates(self):
        c = MetricsRegistry().counter("events")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("events")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_overwrites(self):
        g = MetricsRegistry().gauge("depth")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_percentiles_match_numpy(self):
        h = MetricsRegistry().histogram("latency_s")
        samples = [i / 1000.0 for i in range(1, 101)]
        for s in samples:
            h.observe(s)
        assert h.count == 100
        assert h.sum == pytest.approx(sum(samples))
        assert h.mean == pytest.approx(np.mean(samples))
        for q in (50, 90, 95, 99):
            assert h.percentile(q) == pytest.approx(
                float(np.percentile(samples, q))
            )

    def test_empty_histogram_is_zero(self):
        h = MetricsRegistry().histogram("latency_s")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile(95) == 0.0

    def test_key_renders_sorted_labels(self):
        c = MetricsRegistry().counter("cache.lookups", outcome="hit",
                                      level="result")
        assert c.key == "cache.lookups{level=result,outcome=hit}"

    def test_key_without_labels_is_bare_name(self):
        assert MetricsRegistry().counter("serve.batches").key == "serve.batches"


class TestRegistry:
    def test_get_or_create_identity(self):
        r = MetricsRegistry()
        a = r.counter("hits", level="result")
        b = r.counter("hits", level="result")
        c = r.counter("hits", level="prepare")
        assert a is b
        assert a is not c

    def test_kind_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("x")

    def test_snapshot_shapes(self):
        r = MetricsRegistry()
        r.counter("n").inc(3)
        r.gauge("g").set(0.5)
        h = r.histogram("h")
        h.observe(1.0)
        h.observe(3.0)
        snap = r.snapshot()
        assert snap["n"] == 3
        assert snap["g"] == 0.5
        assert snap["h"]["count"] == 2
        assert snap["h"]["mean"] == pytest.approx(2.0)
        assert snap["h"]["sum"] == pytest.approx(4.0)

    def test_render_lists_every_instrument(self):
        r = MetricsRegistry()
        r.counter("serve.batches").inc(2)
        r.gauge("serve.throughput_rps").set(10.0)
        r.histogram("serve.latency_s").observe(0.01)
        out = r.render(title="bench")
        assert "bench" in out
        for key in ("serve.batches", "serve.throughput_rps",
                    "serve.latency_s"):
            assert key in out

    def test_instruments_sorted_by_key(self):
        r = MetricsRegistry()
        r.counter("b")
        r.counter("a", x="2")
        r.counter("a", x="1")
        assert [i.key for i in r.instruments()] == [
            "a{x=1}", "a{x=2}", "b"
        ]

    def test_concurrent_increments_are_lossless(self):
        r = MetricsRegistry()
        n_threads, per_thread = 8, 500

        def work():
            for _ in range(per_thread):
                r.counter("hits").inc()
                r.histogram("obs").observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert r.counter("hits").value == n_threads * per_thread
        assert r.histogram("obs").count == n_threads * per_thread


class TestCollectServiceMetrics:
    def test_unifies_service_counters(self, sm_dataset):
        from repro.serve import PredictionService, Request

        examples = [
            (sm_dataset.config(i), float(sm_dataset.runtimes[i]))
            for i in range(3)
        ]
        requests = [
            Request(
                examples=examples,
                query_config=sm_dataset.config(40 + i % 2),
                seed=1,
                size="SM",
            )
            for i in range(6)
        ]
        with PredictionService() as service:
            service.submit_many(requests)
            registry = collect_service_metrics(service)
            stats = service.stats()
            rc = service.result_cache
        snap = registry.snapshot()
        # The registry is a relabelling of the existing sources, value
        # for value — ServiceStats...
        assert snap["serve.requests{event=submitted}"] == stats.n_submitted
        assert snap["serve.requests{event=completed}"] == stats.n_completed
        assert snap["serve.batches"] == stats.n_batches
        assert snap["serve.latency_s{quantile=p95}"] == stats.p95_latency_s
        # ...and the LRU cache counters.
        assert snap["cache.lookups{level=result,outcome=hit}"] == rc.hits
        assert snap["cache.lookups{level=result,outcome=miss}"] == rc.misses
        assert snap["cache.capacity{level=result}"] == rc.capacity

    def test_maps_faults_and_breakers(self, sm_dataset):
        from repro.faults import FaultPlan
        from repro.serve import (
            PredictionService,
            Request,
            ResilientService,
            RetryPolicy,
        )

        examples = [
            (sm_dataset.config(i), float(sm_dataset.runtimes[i]))
            for i in range(3)
        ]
        plan = FaultPlan(seed=20250806, transient_error_rate=0.4)
        with PredictionService(fault_plan=plan) as service:
            resilient = ResilientService(
                service,
                retry_policy=RetryPolicy(max_attempts=4),
                sleep=lambda s: None,
            )
            resilient.submit_many(
                Request(
                    examples=examples,
                    query_config=sm_dataset.config(40 + q),
                    seed=q,
                    size="SM",
                )
                for q in range(8)
            )
            registry = collect_service_metrics(service, resilient=resilient)
            stats = service.stats()
            faults = service.faults.stats.snapshot()
        snap = registry.snapshot()
        assert (
            snap["faults.injected{kind=transient_errors}"]
            == faults["transient_errors"]
            >= 1
        )
        assert snap["resilience.retries"] == stats.n_retries
        assert snap["resilience.logical"] == stats.n_logical
        assert snap["resilience.availability"] == stats.availability
        assert (
            snap["breaker.trips{route=SM}"]
            == resilient.breaker("SM").trips
        )
        assert "breaker.open{route=SM}" in snap

    def test_disabled_caches_record_nothing(self, sm_dataset):
        from repro.serve import PredictionService

        with PredictionService(
            enable_prepare_cache=False, enable_result_cache=False
        ) as service:
            snap = collect_service_metrics(service).snapshot()
        assert not any(key.startswith("cache.") for key in snap)
