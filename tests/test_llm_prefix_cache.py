"""Prefix-reuse layer: bit-identity contract, cache behavior, serve grouping.

The hard constraint of :mod:`repro.llm.prefix_cache` is that scoring
through a :class:`PreparedPrefix` snapshot is **bit-identical** to the
cold path for every sampling seed — same candidate ids, same logits (no
tolerance), same sampled tokens.  These tests pin that contract end to
end: engine traces, batch decoding, surrogate predictions, the prompt
builder's splice fast path, the serving layer's shared-prompt decode
groups, and a hypothesis property sweep over random prompts and random
prefix cut points.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.runner import run_spec
from repro.core.grid import ExperimentSpec
from repro.core.surrogate import DiscriminativeSurrogate
from repro.llm import SurrogateLM
from repro.llm.prefix_cache import PrefixCache, token_fingerprint
from repro.prompts.builder import PromptBuilder
from repro.serve import PredictionService, Request

SEEDS = (0, 1, 7, 123)


def _examples(dataset, rows):
    return [
        (dataset.config(int(r)), float(dataset.runtimes[int(r)]))
        for r in rows
    ]


def _assert_traces_identical(a, b):
    assert len(a.steps) == len(b.steps)
    for sa, sb in zip(a.steps, b.steps):
        assert np.array_equal(sa.candidate_ids, sb.candidate_ids)
        # Bit-for-bit: np.array_equal on float logits, no tolerance.
        assert np.array_equal(sa.logits, sb.logits)
        assert sa.chosen_position == sb.chosen_position


@pytest.fixture(scope="module")
def warm_cold(sm_task, tokenizer, lm, engine):
    """(warm, cold) surrogates sharing one LM stack.

    ``warm`` owns a prefix cache; ``cold`` is the reference path with
    prefix reuse disabled.
    """
    warm = DiscriminativeSurrogate(
        sm_task, tokenizer=tokenizer, model=lm, engine=engine,
        prefix_cache=True,
    )
    cold = DiscriminativeSurrogate(
        sm_task, tokenizer=tokenizer, model=lm, engine=engine,
        prefix_cache=False,
    )
    return warm, cold


class TestBitIdentity:
    """Cached-prefix scoring equals the cold path, bit for bit."""

    def test_prefixed_trace_matches_cold_trace(
        self, warm_cold, sm_dataset, engine
    ):
        warm, cold = warm_cold
        parts = warm.build_parts(
            _examples(sm_dataset, range(8)), sm_dataset.config(150)
        )
        prefix = warm.prepared_prefix(parts)
        assert prefix is not None and prefix.extends(parts.ids)
        for seed in SEEDS:
            cold_trace = engine.generate(parts.ids, seed=seed)
            warm_trace = engine.generate(parts.ids, seed=seed, prefix=prefix)
            _assert_traces_identical(cold_trace, warm_trace)

    def test_shared_prefix_across_queries(self, warm_cold, sm_dataset, engine):
        """A second query reusing the snapshot still matches its cold run."""
        warm, _ = warm_cold
        examples = _examples(sm_dataset, range(8))
        hits_before = warm.prefix_cache.hits
        for query_row in (150, 151, 152):
            parts = warm.build_parts(examples, sm_dataset.config(query_row))
            prefix = warm.prepared_prefix(parts)
            for seed in SEEDS[:2]:
                _assert_traces_identical(
                    engine.generate(parts.ids, seed=seed),
                    engine.generate(parts.ids, seed=seed, prefix=prefix),
                )
        # Same examples -> same tokenized prefix -> cache hits after the
        # first build.
        assert warm.prefix_cache.hits >= hits_before + 2

    def test_generate_batch_matches_scalar_cold(
        self, warm_cold, sm_dataset, engine
    ):
        """Lockstep batch decode == N independent cold generations."""
        warm, _ = warm_cold
        parts = warm.build_parts(
            _examples(sm_dataset, range(6)), sm_dataset.config(140)
        )
        prefix = warm.prepared_prefix(parts)
        seeds = list(SEEDS)
        batch = engine.generate_batch(parts.ids, seeds, prefix=prefix)
        assert len(batch) == len(seeds)
        for trace, seed in zip(batch, seeds):
            _assert_traces_identical(
                engine.generate(parts.ids, seed=seed), trace
            )

    def test_predictions_identical_warm_vs_cold(self, warm_cold, sm_dataset):
        warm, cold = warm_cold
        parts = warm.build_parts(
            _examples(sm_dataset, range(6)), sm_dataset.config(141)
        )
        seeds = list(SEEDS)
        warm_preds = warm.predict_parts_batch(parts, seeds)
        for pred, seed in zip(warm_preds, seeds):
            ref = cold.predict_parts(parts, seed=seed)
            assert pred.generated_text == ref.generated_text
            assert pred.value == ref.value
            assert pred.value_text == ref.value_text

    def test_run_spec_identical_with_and_without_prefix_cache(self):
        spec = ExperimentSpec("SM", "random", 5, 0, 1, n_queries=3)
        on = run_spec(spec, prefix_cache=True)
        off = run_spec(spec, prefix_cache=False)
        assert [p.generated_text for p in on] == [
            p.generated_text for p in off
        ]
        assert [p.predicted for p in on] == [p.predicted for p in off]


class TestPrefixCache:
    """LRU semantics, counters, and sharing rules of :class:`PrefixCache`."""

    def _ids(self, tokenizer, text):
        return np.asarray(tokenizer.encode(text), dtype=np.int64)

    def test_hit_miss_counters(self, lm, tokenizer):
        cache = PrefixCache(lm, capacity=4)
        ids = self._ids(tokenizer, "The loop tile factor is 12.\nAnswer:\n4")
        assert cache.prepared(ids, 5) is not None
        assert (cache.hits, cache.misses, len(cache)) == (0, 1, 1)
        again = cache.prepared(ids, 5)
        assert again is cache.prepared(ids, 5)
        assert (cache.hits, cache.misses, len(cache)) == (2, 1, 1)

    def test_lru_eviction_with_recency_update(self, lm, tokenizer):
        cache = PrefixCache(lm, capacity=2)
        a = self._ids(tokenizer, "alpha loop tile 1\n2")
        b = self._ids(tokenizer, "beta loop tile 3\n4")
        c = self._ids(tokenizer, "gamma loop tile 5\n6")
        cache.prepared(a, 3)
        cache.prepared(b, 3)
        cache.prepared(a, 3)  # refresh A: B is now least-recent
        cache.prepared(c, 3)  # evicts B
        assert len(cache) == 2
        misses = cache.misses
        cache.prepared(a, 3)
        assert cache.misses == misses  # A survived
        cache.prepared(b, 3)
        assert cache.misses == misses + 1  # B was evicted

    def test_degenerate_splits_return_none(self, lm, tokenizer):
        cache = PrefixCache(lm)
        ids = self._ids(tokenizer, "loop tile 12\n34")
        for bad_len in (0, -1, ids.size + 1):
            assert cache.prepared(ids, bad_len) is None
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)

    def test_clear_resets_entries_and_counters(self, lm, tokenizer):
        cache = PrefixCache(lm)
        ids = self._ids(tokenizer, "loop tile 12\n34")
        cache.prepared(ids, 3)
        cache.prepared(ids, 3)
        cache.clear()
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)

    def test_capacity_validation(self, lm):
        with pytest.raises(ValueError):
            PrefixCache(lm, capacity=0)

    def test_token_fingerprint_keys_on_content(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        assert token_fingerprint(a) == token_fingerprint(a.copy())
        assert token_fingerprint(a) == token_fingerprint(
            np.array([1, 2, 3], dtype=np.int32)
        )
        assert token_fingerprint(a) != token_fingerprint(a[::-1].copy())
        assert token_fingerprint(a[:2]) != token_fingerprint(a)

    def test_extends(self, lm, tokenizer):
        cache = PrefixCache(lm)
        ids = self._ids(tokenizer, "The answer is 12\n34")
        snap = cache.prepared(ids, 4)
        assert snap.length == 4
        assert snap.extends(ids)
        assert snap.extends(ids[:4])
        assert not snap.extends(ids[:3])
        other = ids.copy()
        other[0] = other[0] + 1
        assert not snap.extends(other)

    def test_shared_cache_across_surrogates(
        self, sm_task, tokenizer, lm, engine, sm_dataset
    ):
        shared = PrefixCache(lm)
        s1 = DiscriminativeSurrogate(
            sm_task, tokenizer=tokenizer, model=lm, engine=engine,
            prefix_cache=shared,
        )
        s2 = DiscriminativeSurrogate(
            sm_task, tokenizer=tokenizer, model=lm, engine=engine,
            prefix_cache=shared,
        )
        examples = _examples(sm_dataset, range(4))
        parts = s1.build_parts(examples, sm_dataset.config(130))
        s1.prepared_prefix(parts)
        assert (shared.hits, shared.misses) == (0, 1)
        s2.prepared_prefix(s2.build_parts(examples, sm_dataset.config(131)))
        assert (shared.hits, shared.misses) == (1, 1)

    def test_shared_cache_must_wrap_same_model(self, sm_task, tokenizer):
        foreign = PrefixCache(SurrogateLM(tokenizer.vocab))
        with pytest.raises(ValueError):
            DiscriminativeSurrogate(
                sm_task, tokenizer=tokenizer, prefix_cache=foreign
            )

    def test_disabled_prefix_cache_prepares_nothing(
        self, warm_cold, sm_dataset
    ):
        _, cold = warm_cold
        parts = cold.build_parts(
            _examples(sm_dataset, range(4)), sm_dataset.config(132)
        )
        assert cold.prefix_cache is None
        assert cold.prepared_prefix(parts) is None


class TestBuilderSplice:
    """The builder's prefix/tail splice equals a full-text encode."""

    @pytest.fixture(scope="class")
    def builder(self, sm_task, tokenizer):
        return PromptBuilder(sm_task, tokenizer)

    def _check(self, parts, tokenizer):
        full = np.asarray(tokenizer.encode(parts.text), dtype=np.int64)
        assert np.array_equal(parts.ids, full)
        assert 0 < parts.prefix_len <= parts.ids.size

    def test_discriminative(self, builder, tokenizer, sm_dataset):
        parts = builder.discriminative(
            _examples(sm_dataset, range(5)), sm_dataset.config(120)
        )
        self._check(parts, tokenizer)

    def test_generative(self, builder, tokenizer, sm_dataset):
        examples = [
            (cfg, i % 4)
            for i, (cfg, _) in enumerate(_examples(sm_dataset, range(5)))
        ]
        parts = builder.generative(examples, sm_dataset.config(120), 4)
        self._check(parts, tokenizer)

    def test_candidate_sampling(self, builder, tokenizer, sm_dataset):
        examples = _examples(sm_dataset, range(5))
        parts = builder.candidate_sampling(examples, examples[0][1])
        self._check(parts, tokenizer)

    def test_same_examples_share_tokenized_prefix(self, builder, sm_dataset):
        examples = _examples(sm_dataset, range(5))
        a = builder.discriminative(examples, sm_dataset.config(120))
        b = builder.discriminative(examples, sm_dataset.config(121))
        assert a.prefix_len == b.prefix_len > 0
        assert np.array_equal(a.ids[: a.prefix_len], b.ids[: b.prefix_len])


def _grid_requests(dataset, n=4, query_row=150):
    examples = _examples(dataset, range(5))
    return [
        Request(
            examples=examples,
            query_config=dataset.config(query_row),
            seed=100 + i,
            size="SM",
        )
        for i in range(n)
    ]


class TestServeGrouping:
    """Same-prompt tickets in one batch share a lockstep decode group."""

    def test_shared_prompt_batch_forms_one_group(self, sm_dataset):
        reqs = _grid_requests(sm_dataset, n=4)
        with PredictionService(max_batch_size=4, max_wait_s=0.5) as svc:
            resps = svc.submit_many(reqs)
            stats = svc.stats()
        assert [r.group_width for r in resps] == [4, 4, 4, 4]
        assert stats.n_groups == 1
        assert stats.n_group_served == 4
        assert stats.mean_group_width == pytest.approx(4.0)
        assert stats.prefix_misses >= 1
        assert stats.prefix_hit_rate <= 1.0

    def test_grouped_results_match_prefix_disabled(self, sm_dataset):
        reqs = _grid_requests(sm_dataset, n=4)
        with PredictionService(max_batch_size=4, max_wait_s=0.5) as on_svc:
            on = on_svc.submit_many(reqs)
        with PredictionService(
            max_batch_size=4, max_wait_s=0.5, enable_prefix_cache=False
        ) as off_svc:
            off = off_svc.submit_many(reqs)
            off_stats = off_svc.stats()
        assert [r.value for r in on] == [r.value for r in off]
        assert [r.prediction.generated_text for r in on] == [
            r.prediction.generated_text for r in off
        ]
        # The disabled path records no prefix or group activity.
        assert off_stats.n_groups == 0
        assert (off_stats.prefix_hits, off_stats.prefix_misses) == (0, 0)
        assert all(r.group_width == 1 for r in off)

    def test_singleton_batch_short_circuits_to_scalar_path(self, sm_dataset):
        """A batch of one never plans groups (the MicroBatcher singleton
        flush regression: grouping machinery must not activate for it)."""
        req = _grid_requests(sm_dataset, n=1)[0]
        with PredictionService(max_batch_size=8, max_wait_s=0.001) as svc:
            first = svc.submit(req)
            second = svc.submit(req)  # sequential: result-cache hit
            stats = svc.stats()
        assert first.group_width == 1
        assert second.group_width == 1
        assert first.value == second.value
        assert stats.n_groups == 0
        assert stats.n_group_served == 0
        assert stats.result_hits == 1
        assert stats.result_misses == 1

    def test_distinct_prompts_do_not_group(self, sm_dataset):
        examples = _examples(sm_dataset, range(5))
        reqs = [
            Request(
                examples=examples,
                query_config=sm_dataset.config(150 + i),
                seed=7,
                size="SM",
            )
            for i in range(4)
        ]
        with PredictionService(max_batch_size=4, max_wait_s=0.5) as svc:
            resps = svc.submit_many(reqs)
            stats = svc.stats()
        assert all(r.group_width == 1 for r in resps)
        assert stats.n_groups == 0


# Text pieces the property sweep assembles prompts from: lexicon words,
# digit runs, punctuation, newlines — enough variety to hit the induction
# windows, the unigram stats, and the format FSM's cue patterns.
_PIECES = st.sampled_from([
    " loop", " tile", " factor", " performance", " configuration",
    " Performance", "\n", "\n\n", ":", ".", ",", " 12", " 3", " 456",
    " 0", "7", "89", " the", " is", " lower", " better", " Answer",
])


class TestPrefixEqualityProperty:
    """Hypothesis sweep: any prompt, any prefix cut, any seed — equal bits."""

    @settings(max_examples=25, deadline=None)
    @given(pieces=st.lists(_PIECES, min_size=3, max_size=30),
           cut_frac=st.floats(0.05, 0.95))
    def test_random_cut_prefix_logits_bit_identical(
        self, tokenizer, lm, pieces, cut_frac
    ):
        text = "".join(pieces)
        ids = np.asarray(tokenizer.encode(text), dtype=np.int64)
        if ids.size < 2:
            return
        cut = min(max(1, int(ids.size * cut_frac)), ids.size - 1)
        snap = lm.prepare_prefix(ids[:cut])
        assert snap.length == cut and snap.extends(ids)
        cold_analysis = lm.prepare(ids)
        warm_analysis = lm.prepare(ids, prefix=snap)
        for seed in (0, 1, 2):
            cold_ids, cold_logits = lm.next_token_logits(
                ids, [], sample_seed=seed, step=0, analysis=cold_analysis
            )
            warm_ids, warm_logits = lm.next_token_logits(
                ids, [], sample_seed=seed, step=0,
                analysis=warm_analysis, prefix=snap,
            )
            assert np.array_equal(cold_ids, warm_ids)
            assert np.array_equal(cold_logits, warm_logits)

    @settings(max_examples=10, deadline=None)
    @given(pieces=st.lists(_PIECES, min_size=4, max_size=20),
           tail_pieces=st.lists(_PIECES, min_size=1, max_size=8))
    def test_shared_prefix_pair_generations_identical(
        self, tokenizer, lm, engine, pieces, tail_pieces
    ):
        """Two prompts sharing a prefix: cached generations match cold."""
        shared = "".join(pieces)
        shared_ids = np.asarray(tokenizer.encode(shared), dtype=np.int64)
        if shared_ids.size < 1:
            return
        snap = lm.prepare_prefix(shared_ids)
        for tail in ("".join(tail_pieces), " Answer: 42"):
            ids = np.asarray(tokenizer.encode(shared + tail), dtype=np.int64)
            if not snap.extends(ids):
                # Tokenizer merged across the boundary; the snapshot does
                # not apply to this prompt (callers check extends()).
                continue
            for seed in (0, 1, 2):
                _assert_traces_identical(
                    engine.generate(ids, seed=seed),
                    engine.generate(ids, seed=seed, prefix=snap),
                )
