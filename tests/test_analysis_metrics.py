"""Tests for the paper's prediction metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.metrics import (
    mare,
    msre,
    r2_score,
    relative_errors,
    score_predictions,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestR2:
    def test_perfect(self):
        assert r2_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_mean_predictor_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, y.mean())) == pytest.approx(0.0)

    def test_can_be_negative(self):
        assert r2_score([1, 2, 3], [3, 2, 1]) < 0

    def test_constant_truth_degenerate(self):
        assert r2_score([2, 2], [2, 2]) == 1.0
        assert r2_score([2, 2], [2, 3]) == float("-inf")

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            r2_score([1], [1, 2])

    @given(st.lists(finite_floats, min_size=2, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_never_exceeds_one(self, values):
        y = np.asarray(values)
        pred = y + 0.5
        assert r2_score(y, pred) <= 1.0 + 1e-12


class TestRelativeErrors:
    def test_basic(self):
        errs = relative_errors([2.0, 4.0], [1.0, 6.0])
        np.testing.assert_allclose(errs, [0.5, 0.5])

    def test_zero_truth_rejected(self):
        with pytest.raises(ValueError):
            relative_errors([0.0], [1.0])

    def test_sign_invariant(self):
        a = relative_errors([2.0], [1.0])
        b = relative_errors([2.0], [3.0])
        np.testing.assert_allclose(a, b)


class TestMareMsre:
    def test_mare(self):
        assert mare([1.0, 1.0], [1.1, 0.9]) == pytest.approx(0.1)

    def test_msre(self):
        assert msre([1.0, 1.0], [1.1, 0.9]) == pytest.approx(0.01)

    def test_msre_penalizes_outliers_more(self):
        y = [1.0, 1.0, 1.0, 1.0]
        mild = [1.2, 1.2, 1.2, 1.2]
        spiky = [1.0, 1.0, 1.0, 1.8]
        assert mare(y, mild) == pytest.approx(mare(y, spiky))
        assert msre(y, spiky) > msre(y, mild)

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_perfect_prediction_zero_error(self, values):
        assert mare(values, values) == 0.0
        assert msre(values, values) == 0.0


class TestScorePredictions:
    def test_triple(self):
        m = score_predictions([1.0, 2.0, 4.0], [1.0, 2.2, 3.6])
        assert m.n == 3
        assert m.r2 <= 1.0
        assert m.mare > 0 and m.msre > 0
        assert m.as_row() == (m.r2, m.mare, m.msre)

    def test_str(self):
        m = score_predictions([1.0, 2.0], [1.0, 2.0])
        assert "R2=" in str(m)
