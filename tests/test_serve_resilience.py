"""Tests for :mod:`repro.serve.resilience` and the fallback chain.

Retry backoff, circuit-breaker state machine, and graceful degradation
are exercised with injected fault plans; the headline property — same
plan + seed reproduces identical retry/breaker/degradation counts — is
pinned here and again (at scale) in the chaos benchmark.
"""

import numpy as np
import pytest

from repro.errors import (
    CircuitOpenError,
    GenerationError,
    InjectedFaultError,
    RequestTimeoutError,
    ServiceOverloadedError,
)
from repro.faults import FaultPlan
from repro.serve import (
    CircuitBreaker,
    FallbackChain,
    PredictionService,
    Request,
    ResilientService,
    RetryPolicy,
)


@pytest.fixture(scope="module")
def examples(sm_dataset):
    return [
        (sm_dataset.config(i), float(sm_dataset.runtimes[i]))
        for i in range(4)
    ]


def make_request(sm_dataset, examples, query=42, seed=0, **kw):
    return Request(
        examples=examples,
        query_config=sm_dataset.config(query),
        seed=seed,
        size="SM",
        **kw,
    )


def resilient(service, **kw):
    """ResilientService with backoff sleeps stubbed out (test speed)."""
    kw.setdefault("sleep", lambda s: None)
    return ResilientService(service, **kw)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(retry_budget=-1)

    def test_retryable_classification(self):
        policy = RetryPolicy()
        assert policy.retryable(InjectedFaultError("serve", 0))
        assert policy.retryable(ServiceOverloadedError(4))
        assert policy.retryable(RequestTimeoutError(0.1))
        assert not policy.retryable(GenerationError("broken"))
        assert not policy.retryable(ValueError("nope"))

    def test_delay_is_deterministic(self):
        a = RetryPolicy(seed=3)
        b = RetryPolicy(seed=3)
        delays = [(k, n) for k in range(5) for n in range(1, 4)]
        assert [a.delay_s(k, n) for k, n in delays] == [
            b.delay_s(k, n) for k, n in delays
        ]

    def test_delay_respects_ladder_and_jitter(self):
        policy = RetryPolicy(
            base_delay_s=0.01, multiplier=2.0, max_delay_s=0.05, jitter=0.5
        )
        for attempt in range(1, 8):
            ceiling = min(0.01 * 2.0 ** (attempt - 1), 0.05)
            d = policy.delay_s("key", attempt)
            # Jitter only shrinks the wait, never exceeds the ladder.
            assert ceiling * 0.5 <= d <= ceiling

    def test_zero_jitter_is_exact_ladder(self):
        policy = RetryPolicy(
            base_delay_s=0.01, multiplier=2.0, max_delay_s=1.0, jitter=0.0
        )
        assert policy.delay_s("k", 1) == 0.01
        assert policy.delay_s("k", 2) == 0.02
        assert policy.delay_s("k", 3) == 0.04


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout_s=-1.0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_successes=0)

    def test_trips_after_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()  # third failure trips
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_failure_streak(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        assert not breaker.record_failure()  # streak restarted
        assert breaker.state == "closed"

    def test_half_open_after_timeout_then_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=10.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == "open"
        clock.t = 9.9
        assert not breaker.allow()
        clock.t = 10.0
        assert breaker.state == "half-open"
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_re_trips(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=5.0, clock=clock
        )
        breaker.record_failure()
        clock.t = 5.0
        assert breaker.state == "half-open"
        assert breaker.record_failure()  # probe failed: straight back open
        assert breaker.state == "open"
        assert breaker.trips == 2

    def test_half_open_needs_enough_successes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1,
            reset_timeout_s=1.0,
            half_open_successes=2,
            clock=clock,
        )
        breaker.record_failure()
        clock.t = 1.0
        breaker.record_success()
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_bounds_inflight_probes(self):
        """allow() hands out at most half_open_successes probe tokens."""
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1,
            reset_timeout_s=1.0,
            half_open_successes=2,
            clock=clock,
        )
        breaker.record_failure()
        clock.t = 1.0
        assert breaker.allow()
        assert breaker.allow()
        # Token pool exhausted: further callers are refused until an
        # outstanding probe reports an outcome.
        assert not breaker.allow()
        breaker.record_success()  # returns one token and counts it
        assert breaker.allow()
        assert not breaker.allow()

    def test_release_returns_token_without_outcome(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=1.0, clock=clock
        )
        breaker.record_failure()
        clock.t = 1.0
        assert breaker.allow()
        assert not breaker.allow()
        breaker.release()  # abandoned probe (e.g. service closed)
        assert breaker.state == "half-open"  # no outcome recorded
        assert breaker.allow()

    def test_half_open_probe_failure_reopens_and_resets_tokens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1,
            reset_timeout_s=1.0,
            half_open_successes=2,
            clock=clock,
        )
        breaker.record_failure()
        clock.t = 1.0
        assert breaker.allow()
        assert breaker.record_failure()  # probe failed: back to open
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.t = 2.0  # next half-open window starts with a full pool
        assert breaker.allow()
        assert breaker.allow()

    def test_half_open_hammer_admits_exactly_token_pool(self):
        """N threads racing allow() in half-open: exactly the pool gets in.

        Pre-fix, allow() admitted every caller that observed the
        half-open state, so a recovering route got stampeded by the
        whole retry herd instead of probed gently.
        """
        import threading

        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1,
            reset_timeout_s=1.0,
            half_open_successes=2,
            clock=clock,
        )
        breaker.record_failure()
        clock.t = 1.0
        n_threads = 16
        barrier = threading.Barrier(n_threads)
        admitted = []
        lock = threading.Lock()

        def hammer():
            barrier.wait()
            ok = breaker.allow()
            with lock:
                admitted.append(ok)

        threads = [
            threading.Thread(target=hammer) for _ in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(admitted) == 2
        assert breaker.state == "half-open"


class TestResilientService:
    def test_clean_path_no_resilience_overhead(self, sm_dataset, examples):
        with PredictionService() as base:
            svc = resilient(base)
            resp = svc.submit(make_request(sm_dataset, examples, seed=3))
            stats = svc.stats()
        assert not resp.degraded
        assert resp.provenance == "service"
        assert stats.n_logical == 1
        assert stats.n_retries == 0
        assert stats.n_degraded == 0
        assert stats.availability == 1.0

    def test_retry_absorbs_transient_faults(self, sm_dataset, examples):
        """A moderate fault rate is fully absorbed: no degraded serves."""
        plan = FaultPlan(seed=20250806, transient_error_rate=0.2)
        with PredictionService(fault_plan=plan) as base:
            svc = resilient(base, retry_policy=RetryPolicy(max_attempts=6))
            responses = svc.submit_many(
                make_request(sm_dataset, examples, query=q, seed=q)
                for q in range(12)
            )
            stats = svc.stats()
        assert len(responses) == 12
        assert stats.n_retries >= 1  # the plan fired at least once
        assert stats.availability == 1.0

    def test_degrades_when_retries_exhausted(self, sm_dataset, examples):
        plan = FaultPlan(seed=1, transient_error_rate=1.0)
        with PredictionService(fault_plan=plan) as base:
            svc = resilient(base, retry_policy=RetryPolicy(max_attempts=2))
            resp = svc.submit(make_request(sm_dataset, examples))
            stats = svc.stats()
        assert resp.degraded
        assert resp.provenance == "gbt-surrogate"  # cache empty, GBT next
        assert resp.prediction.value > 0
        assert stats.n_degraded == 1
        assert stats.n_retries == 1  # attempt 2 of 2 = one retry
        assert stats.availability == 1.0  # degraded still counts as served
        assert stats.degraded_rate == 1.0

    def test_fallback_disabled_raises(self, sm_dataset, examples):
        plan = FaultPlan(seed=1, transient_error_rate=1.0)
        with PredictionService(fault_plan=plan) as base:
            svc = resilient(
                base,
                retry_policy=RetryPolicy(max_attempts=2),
                fallback=False,
            )
            with pytest.raises(InjectedFaultError):
                svc.submit(make_request(sm_dataset, examples))
            stats = svc.stats()
        assert stats.n_unavailable == 1
        assert stats.availability == 0.0

    def test_retry_budget_is_a_stop_loss(self, sm_dataset, examples):
        plan = FaultPlan(seed=1, transient_error_rate=1.0)
        with PredictionService(fault_plan=plan) as base:
            svc = resilient(
                base,
                retry_policy=RetryPolicy(max_attempts=10, retry_budget=1),
            )
            svc.submit_many(
                make_request(sm_dataset, examples, query=q, seed=q)
                for q in range(3)
            )
            stats = svc.stats()
        assert stats.n_retries == 1  # budget, not max_attempts, bound it
        assert stats.n_degraded == 3

    def test_breaker_trips_and_fails_fast(self, sm_dataset, examples):
        plan = FaultPlan(seed=1, transient_error_rate=1.0)
        with PredictionService(fault_plan=plan) as base:
            svc = resilient(
                base,
                retry_policy=RetryPolicy(max_attempts=2),
                breaker_factory=lambda: CircuitBreaker(
                    failure_threshold=2, reset_timeout_s=1000.0
                ),
                fallback=False,
            )
            with pytest.raises(InjectedFaultError):
                svc.submit(make_request(sm_dataset, examples))
            assert svc.breaker("SM").state == "open"
            # Breaker open: next request is refused without touching the
            # service (CircuitOpenError, not the injected fault).
            with pytest.raises(CircuitOpenError):
                svc.submit(make_request(sm_dataset, examples, query=7))
            stats = svc.stats()
        assert stats.n_breaker_trips == 1
        assert stats.n_unavailable == 2

    def test_breaker_open_still_degrades(self, sm_dataset, examples):
        plan = FaultPlan(seed=1, transient_error_rate=1.0)
        with PredictionService(fault_plan=plan) as base:
            svc = resilient(
                base,
                retry_policy=RetryPolicy(max_attempts=2),
                breaker_factory=lambda: CircuitBreaker(
                    failure_threshold=1, reset_timeout_s=1000.0
                ),
            )
            resp = svc.submit(make_request(sm_dataset, examples))
            assert resp.degraded
            # Open breaker short-circuits; the fallback still answers.
            resp2 = svc.submit(make_request(sm_dataset, examples, query=7))
            stats = svc.stats()
        assert resp2.degraded
        assert stats.availability == 1.0

    def test_breakers_are_per_route(self, sm_dataset, examples):
        with PredictionService() as base:
            svc = resilient(base)
            assert svc.breaker("SM") is svc.breaker("SM")
            assert svc.breaker("SM") is not svc.breaker("XL")

    def test_counters_reproduce_across_runs(self, sm_dataset, examples):
        """Same plan + seed: identical retry/breaker/degradation counts."""

        def drill():
            plan = FaultPlan(
                seed=99,
                transient_error_rate=0.3,
                eviction_storm_rate=0.1,
            )
            with PredictionService(fault_plan=plan) as base:
                svc = resilient(
                    base, retry_policy=RetryPolicy(max_attempts=3, seed=99)
                )
                svc.submit_many(
                    make_request(sm_dataset, examples, query=q, seed=q)
                    for q in range(20)
                )
                stats = svc.stats()
            return (
                stats.n_retries,
                stats.n_breaker_trips,
                stats.n_degraded,
                stats.n_unavailable,
                stats.n_logical,
            )

        first, second = drill(), drill()
        assert first == second
        assert first[4] == 20


class TestFallbackChain:
    def test_result_cache_rung(self, sm_dataset, examples):
        """A previously served request degrades to its exact cached answer."""
        request = make_request(sm_dataset, examples, seed=5)
        with PredictionService() as base:
            live = base.submit(request)
            chain = FallbackChain(base)
            degraded = chain.degraded_response(request)
        assert degraded is not None
        assert degraded.degraded
        assert degraded.provenance == "result-cache"
        assert degraded.prediction.value == live.prediction.value

    def test_cached_response_miss_returns_none(self, sm_dataset, examples):
        with PredictionService() as base:
            assert base.cached_response(
                make_request(sm_dataset, examples, seed=123)
            ) is None

    def test_gbt_rung(self, sm_dataset, examples):
        chain = FallbackChain(None, use_prior=False)
        resp = chain.degraded_response(make_request(sm_dataset, examples))
        assert resp.provenance == "gbt-surrogate"
        assert resp.degraded
        assert resp.prediction.value > 0
        # A sane runtime guess: right order of magnitude for SM syr2k.
        truth = float(sm_dataset.runtimes[42])
        assert resp.prediction.value / truth < 100
        assert truth / resp.prediction.value < 100

    def test_magnitude_prior_rung(self, sm_dataset, examples):
        chain = FallbackChain(None, use_cache=False, use_gbt=False)
        resp = chain.degraded_response(make_request(sm_dataset, examples))
        assert resp.provenance == "magnitude-prior"
        want = float(np.median([runtime for _, runtime in examples]))
        assert resp.prediction.value == want

    def test_all_rungs_disabled(self, sm_dataset, examples):
        chain = FallbackChain(
            None, use_cache=False, use_gbt=False, use_prior=False
        )
        assert chain.degraded_response(
            make_request(sm_dataset, examples)
        ) is None

    def test_synthetic_prediction_is_well_formed(self, sm_dataset, examples):
        chain = FallbackChain(None, use_cache=False, use_gbt=False)
        resp = chain.degraded_response(
            make_request(sm_dataset, examples, seed=17), request_id=7
        )
        pred = resp.prediction
        assert resp.request_id == 7
        assert pred.value_text == f"{pred.value:.7f}"
        assert pred.seed == 17
        assert pred.generated_text == ""
