"""Arrival-process determinism and shape pins for repro.loadgen.arrivals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import LoadgenError
from repro.loadgen import ARRIVAL_KINDS, arrival_schedule, schedule_digest


class TestConstant:
    def test_exact_closed_form(self):
        times = arrival_schedule("constant", 10.0, 2.0, seed=1)
        assert np.array_equal(times, np.arange(20, dtype=np.float64) / 10.0)

    def test_seed_is_irrelevant(self):
        a = arrival_schedule("constant", 7.0, 3.0, seed=1)
        b = arrival_schedule("constant", 7.0, 3.0, seed=999)
        assert schedule_digest(a) == schedule_digest(b)


class TestPoisson:
    def test_bit_identical_across_calls(self):
        a = arrival_schedule("poisson", 200.0, 5.0, seed=7)
        b = arrival_schedule("poisson", 200.0, 5.0, seed=7)
        assert a.tobytes() == b.tobytes()
        assert schedule_digest(a) == schedule_digest(b)

    def test_seed_sensitivity(self):
        a = arrival_schedule("poisson", 50.0, 2.0, seed=1)
        b = arrival_schedule("poisson", 50.0, 2.0, seed=2)
        assert schedule_digest(a) != schedule_digest(b)

    def test_spec_knobs_feed_the_derived_seed(self):
        base = schedule_digest(arrival_schedule("poisson", 50.0, 2.0, seed=1))
        other_rate = schedule_digest(
            arrival_schedule("poisson", 60.0, 2.0, seed=1)
        )
        assert base != other_rate

    def test_sorted_and_bounded(self):
        times = arrival_schedule("poisson", 100.0, 3.0, seed=5)
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= 0.0
        assert times[-1] < 3.0

    def test_mean_rate_close_to_requested(self):
        times = arrival_schedule("poisson", 500.0, 10.0, seed=11)
        assert len(times) == pytest.approx(5000, rel=0.10)


class TestOnOff:
    def test_bit_identical_across_calls(self):
        a = arrival_schedule("onoff", 40.0, 4.0, seed=3)
        b = arrival_schedule("onoff", 40.0, 4.0, seed=3)
        assert a.tobytes() == b.tobytes()

    def test_arrivals_confined_to_on_windows(self):
        times = arrival_schedule(
            "onoff", 50.0, 6.0, seed=9, on_fraction=0.25, period_s=2.0
        )
        phase = np.mod(times, 2.0)
        assert np.all(phase < 0.25 * 2.0 + 1e-9)

    def test_mean_rate_preserved_despite_bursting(self):
        times = arrival_schedule(
            "onoff", 100.0, 20.0, seed=13, on_fraction=0.5, period_s=2.0
        )
        assert len(times) == pytest.approx(2000, rel=0.10)

    def test_shape_params_change_the_schedule(self):
        a = arrival_schedule("onoff", 40.0, 4.0, seed=3, on_fraction=0.5)
        b = arrival_schedule("onoff", 40.0, 4.0, seed=3, on_fraction=0.25)
        assert schedule_digest(a) != schedule_digest(b)


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(LoadgenError):
            arrival_schedule("uniform", 10.0, 1.0, seed=1)

    @pytest.mark.parametrize("rps,duration", [(0.0, 1.0), (-5.0, 1.0), (10.0, 0.0)])
    def test_nonpositive_spec(self, rps, duration):
        with pytest.raises(LoadgenError):
            arrival_schedule("poisson", rps, duration, seed=1)

    def test_bad_onoff_shape(self):
        with pytest.raises(LoadgenError):
            arrival_schedule("onoff", 10.0, 1.0, seed=1, on_fraction=0.0)
        with pytest.raises(LoadgenError):
            arrival_schedule("onoff", 10.0, 1.0, seed=1, period_s=-1.0)

    def test_kinds_registry(self):
        assert ARRIVAL_KINDS == ("constant", "poisson", "onoff")


def test_digest_is_byte_exact():
    times = np.array([0.0, 0.5, 1.0])
    nudged = times.copy()
    nudged[1] = np.nextafter(0.5, 1.0)
    assert schedule_digest(times) != schedule_digest(nudged)
