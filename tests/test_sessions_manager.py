"""Tests for the session manager: fairness, lifecycle, resume, faults.

Most tests drive the manager against a :class:`StubService` whose
futures resolve immediately — the manager's determinism contract says
histories must be independent of the serving backend, so everything
pinned here (fairness, resume exactness, run_tuner equality) holds for
the real service too (covered by one integration test at the end and
the sessions benchmarks).
"""

import os
import subprocess
import sys
from concurrent.futures import Future
from pathlib import Path
from types import SimpleNamespace

import pytest

import repro
from repro.core.storage import load_events_jsonl
from repro.dataset import Syr2kPerformanceModel, Syr2kTask, syr2k_space
from repro.errors import (
    InjectedFaultError,
    ServiceOverloadedError,
    SessionError,
)
from repro.sessions import (
    DONE,
    EVENT_KIND,
    FAILED,
    PAUSED,
    AdmissionController,
    SessionManager,
    TenantQuota,
    TuningSession,
    collect_session_metrics,
    jains_index,
    replay_log,
)
from repro.tuning import RandomSearchTuner
from repro.tuning.harness import run_tuner


def ok_response(value=0.5):
    return SimpleNamespace(value=value, provenance="stub", degraded=False)


class StubService:
    """Async-capable fake: every submit resolves instantly.

    ``overload_first`` makes the first N submits raise
    :class:`ServiceOverloadedError` (the shed path);
    ``fail_submits`` is a set of 1-based submit ordinals whose futures
    resolve to an :class:`InjectedFaultError` (the eval-retry path).
    """

    def __init__(self, overload_first=0, fail_submits=()):
        self.n_submits = 0
        self.overload_first = overload_first
        self.fail_submits = set(fail_submits)
        self.requests = []

    def submit_async(self, request):
        self.n_submits += 1
        if self.n_submits <= self.overload_first:
            raise ServiceOverloadedError(4, 4)
        self.requests.append(request)
        future = Future()
        if self.n_submits in self.fail_submits:
            future.set_exception(InjectedFaultError("stub", self.n_submits))
        else:
            future.set_result(ok_response())
        return future


class FakeClock:
    """Monotonic clock advancing a fixed step per read."""

    def __init__(self, step=0.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


@pytest.fixture(scope="module")
def model():
    return Syr2kPerformanceModel(Syr2kTask("SM"))


def make_session(model, sid, tenant, *, budget=8, tuner_seed=5, **kwargs):
    return TuningSession(
        sid,
        tenant,
        RandomSearchTuner(syr2k_space(), seed=tuner_seed),
        model,
        budget,
        **kwargs,
    )


def tenant_counts(manager):
    counts = {}
    for session in manager.registry:
        counts[session.tenant] = (
            counts.get(session.tenant, 0) + len(session.history)
        )
    return counts


class TestBasicRun:
    def test_all_sessions_complete(self, model):
        sessions = [
            make_session(model, f"t{i}/s0", f"t{i}", budget=6)
            for i in range(3)
        ]
        manager = SessionManager(StubService(), sessions=sessions)
        snapshot = manager.run()
        assert all(s.state == DONE for s in manager.registry)
        assert snapshot["completed"] == 18
        assert manager.admission.total_inflight == 0

    def test_histories_equal_run_tuner(self, model):
        """The determinism contract: concurrent service-driven campaigns
        produce bit-identical histories to the sequential loop."""
        sessions = [
            make_session(model, f"t{i}/s0", f"t{i}", budget=8, tuner_seed=7)
            for i in range(3)
        ]
        SessionManager(StubService(), sessions=sessions).run()
        reference = run_tuner(
            RandomSearchTuner(syr2k_space(), seed=7), model, 8
        )
        for session in sessions:
            assert session.history.indices == reference.history.indices
            assert session.history.runtimes == reference.history.runtimes

    def test_duplicate_session_id_rejected(self, model):
        manager = SessionManager(
            StubService(),
            sessions=[make_session(model, "a", "t0")],
        )
        with pytest.raises(SessionError):
            manager.add_session(make_session(model, "a", "t1"))

    def test_snapshot_and_metrics(self, model):
        manager = SessionManager(
            StubService(),
            sessions=[make_session(model, "a", "t0", budget=4)],
        )
        manager.run()
        snapshot = manager.snapshot()
        assert snapshot["tenants"]["t0"]["completed_evaluations"] == 4
        assert snapshot["fairness_jain"] == pytest.approx(1.0)
        registry = collect_session_metrics(manager)
        snap = registry.snapshot()
        assert snap["sessions.evaluations{tenant=t0}"] == 4
        assert snap["sessions.sessions{state=DONE}"] == 1.0


class TestFairness:
    def test_equal_tenants_saturated_service(self, model):
        """Acceptance criterion: 3 equal-priority tenants against a
        saturated service (global in-flight ceiling of 1, so every tick
        sheds the rest) end with Jain's index >= 0.95."""
        sessions = [
            make_session(model, f"t{i}/s0", f"t{i}", budget=20)
            for i in range(3)
        ]
        manager = SessionManager(
            StubService(),
            sessions=sessions,
            admission=AdmissionController(max_inflight=1),
            sleep=lambda s: None,
        )
        # cut off mid-flight so unequal progress would show up
        manager.run(max_evaluations=30)
        counts = tenant_counts(manager)
        assert sum(counts.values()) >= 30
        assert jains_index(counts.values()) >= 0.95

    def test_priority_weighted_share(self, model):
        """A weight-3 tenant makes ~3x the progress of weight-1 peers
        while the budget cutoff binds."""
        sessions = [
            make_session(
                model, "heavy/s0", "heavy", budget=60, priority=3
            ),
            make_session(model, "light/s0", "light", budget=60, priority=1),
        ]
        manager = SessionManager(
            StubService(),
            sessions=sessions,
            admission=AdmissionController(max_inflight=1),
            sleep=lambda s: None,
        )
        manager.run(max_evaluations=40)
        counts = tenant_counts(manager)
        ratio = counts["heavy"] / counts["light"]
        assert 2.0 <= ratio <= 4.0


class TestAdmissionIntegration:
    def test_zero_quota_tenant_fails_others_proceed(self, model):
        sessions = [
            make_session(model, "blocked/s0", "blocked", budget=5),
            make_session(model, "ok/s0", "ok", budget=5),
        ]
        manager = SessionManager(
            StubService(),
            sessions=sessions,
            admission=AdmissionController(
                {"blocked": TenantQuota(max_evaluations=0)}
            ),
        )
        manager.run()
        blocked = manager.registry.get("blocked/s0")
        assert blocked.state == FAILED
        assert "quota" in blocked.failure_reason
        assert len(blocked.history) == 0
        assert manager.registry.get("ok/s0").state == DONE

    def test_shed_preserves_trajectory(self, model):
        """Overload sheds never burn a proposal: the history still
        matches the sequential reference exactly."""
        service = StubService(overload_first=4)
        sessions = [make_session(model, "a", "t0", budget=6, tuner_seed=3)]
        manager = SessionManager(
            service, sessions=sessions, sleep=lambda s: None
        )
        manager.run()
        session = sessions[0]
        assert session.state == DONE
        assert session.n_shed == 4
        reference = run_tuner(
            RandomSearchTuner(syr2k_space(), seed=3), model, 6
        )
        assert session.history.indices == reference.history.indices
        assert session.history.runtimes == reference.history.runtimes

    def test_rate_limited_tenant_still_completes(self, model):
        clock = FakeClock(step=0.05)
        sessions = [make_session(model, "a", "t0", budget=6)]
        manager = SessionManager(
            StubService(),
            sessions=sessions,
            admission=AdmissionController(
                {"t0": TenantQuota(rate_per_s=5.0, burst=1.0)},
                clock=clock,
            ),
            clock=clock,
            sleep=lambda s: None,
        )
        manager.run()
        assert sessions[0].state == DONE


class TestEvalFailures:
    def test_transient_eval_error_retried(self, model):
        service = StubService(fail_submits={2})
        sessions = [make_session(model, "a", "t0", budget=5, tuner_seed=3)]
        manager = SessionManager(
            service, sessions=sessions, sleep=lambda s: None
        )
        manager.run()
        session = sessions[0]
        assert session.state == DONE
        assert session.n_eval_errors == 1
        reference = run_tuner(
            RandomSearchTuner(syr2k_space(), seed=3), model, 5
        )
        assert session.history.indices == reference.history.indices

    def test_persistent_eval_error_fails_session(self, model):
        service = StubService(fail_submits=set(range(1, 100)))
        sessions = [make_session(model, "a", "t0", budget=5)]
        manager = SessionManager(
            service,
            sessions=sessions,
            eval_max_attempts=3,
            sleep=lambda s: None,
        )
        manager.run()
        session = sessions[0]
        assert session.state == FAILED
        assert "failed 3x" in session.failure_reason
        assert session.n_eval_errors == 3


class TestLifecycle:
    def test_all_sessions_paused_returns_immediately(self, model):
        sessions = [
            make_session(model, f"s{i}", f"t{i}", budget=5)
            for i in range(2)
        ]
        manager = SessionManager(StubService(), sessions=sessions)
        manager.run(max_evaluations=0)  # starts then stop-pauses everyone
        manager._stopped.clear()  # make the pauses user-intent
        snapshot = manager.run()
        assert all(s.state == PAUSED for s in manager.registry)
        assert snapshot["completed"] == 0

    def test_stop_limit_pauses_and_restarts(self, model):
        sessions = [make_session(model, "a", "t0", budget=10, tuner_seed=4)]
        manager = SessionManager(
            StubService(), sessions=sessions, sleep=lambda s: None
        )
        manager.run(max_evaluations=3)
        session = sessions[0]
        assert session.state == PAUSED
        assert 3 <= len(session.history) < 10
        manager.run()
        assert session.state == DONE
        reference = run_tuner(
            RandomSearchTuner(syr2k_space(), seed=4), model, 10
        )
        assert session.history.indices == reference.history.indices
        assert session.history.runtimes == reference.history.runtimes

    def test_deadline_expiry_mid_run(self, model):
        clock = FakeClock(step=0.05)
        sessions = [
            make_session(
                model, "dl", "t0", budget=1000, deadline_s=2.0
            ),
            make_session(model, "ok", "t1", budget=5),
        ]
        manager = SessionManager(
            StubService(),
            sessions=sessions,
            clock=clock,
            sleep=lambda s: None,
        )
        manager.run()
        expired = manager.registry.get("dl")
        assert expired.state == FAILED
        assert "deadline" in expired.failure_reason
        assert len(expired.history) < 1000
        assert manager.registry.get("ok").state == DONE
        assert manager.admission.total_inflight == 0

    def test_invalid_transitions_raise(self, model):
        session = make_session(model, "a", "t0")
        with pytest.raises(SessionError):
            session.pause()  # PENDING -> PAUSED is invalid
        session.start()
        with pytest.raises(SessionError):
            session.start()
        session.fail("boom")
        with pytest.raises(SessionError):
            session.fail("again")


class TestEventLogAndResume:
    def test_log_matches_history_exactly(self, model, tmp_path):
        log = tmp_path / "log.jsonl"
        sessions = [
            make_session(model, f"t{i}/s0", f"t{i}", budget=5)
            for i in range(2)
        ]
        manager = SessionManager(
            StubService(), sessions=sessions, log_path=log
        )
        manager.run()
        manager.close()
        by_step = {}
        for event in load_events_jsonl(log, kind=EVENT_KIND):
            if event["event"] != "eval":
                continue
            key = (event["session"], event["step"])
            assert key not in by_step, "duplicated evaluation in log"
            by_step[key] = (event["index"], event["runtime"])
        for session in sessions:
            for step, (index, runtime) in enumerate(
                zip(session.history.indices, session.history.runtimes)
            ):
                assert by_step[(session.session_id, step)] == (
                    index,
                    runtime,
                )
        assert len(by_step) == 10  # nothing lost, nothing extra

    def test_resume_after_stop_is_exact(self, model, tmp_path):
        log = tmp_path / "log.jsonl"
        manager = SessionManager(
            StubService(),
            sessions=[
                make_session(model, "a", "t0", budget=9, tuner_seed=6)
            ],
            log_path=log,
        )
        manager.run(max_evaluations=4)
        manager.close()

        resumed_session = make_session(model, "a", "t0", budget=9,
                                       tuner_seed=6)
        manager2 = SessionManager(
            StubService(),
            sessions=[resumed_session],
            log_path=log,
            resume=True,
        )
        assert len(resumed_session.history) >= 4
        manager2.run()
        manager2.close()
        reference = run_tuner(
            RandomSearchTuner(syr2k_space(), seed=6), model, 9
        )
        assert resumed_session.history.indices == reference.history.indices
        assert (
            resumed_session.history.runtimes == reference.history.runtimes
        )

    def test_resume_refuses_mismatched_campaign(self, model, tmp_path):
        log = tmp_path / "log.jsonl"
        manager = SessionManager(
            StubService(),
            sessions=[make_session(model, "a", "t0", budget=6)],
            log_path=log,
        )
        manager.run(max_evaluations=2)
        manager.close()
        with pytest.raises(SessionError, match="refusing to resume"):
            SessionManager(
                StubService(),
                sessions=[make_session(model, "a", "t0", budget=7)],
                log_path=log,
                resume=True,
            )

    def test_resume_requires_log_path(self):
        with pytest.raises(SessionError):
            SessionManager(StubService(), resume=True)

    def test_kill_and_resume_subprocess(self, model, tmp_path):
        """Acceptance criterion: kill the manager mid-run, resume from
        the journal, and end with the exact same TuningHistory — no
        lost or duplicated evaluations."""
        log = tmp_path / "sessions.jsonl"
        child = f"""
import os
from concurrent.futures import Future
from types import SimpleNamespace

from repro.dataset import Syr2kPerformanceModel, Syr2kTask, syr2k_space
from repro.sessions import SessionManager, TuningSession
from repro.tuning import RandomSearchTuner

class DyingStub:
    def __init__(self):
        self.n = 0
    def submit_async(self, request):
        self.n += 1
        if self.n > 8:
            os._exit(23)  # hard kill mid-campaign, no cleanup
        future = Future()
        future.set_result(SimpleNamespace(
            value=0.5, provenance="stub", degraded=False))
        return future

task = Syr2kTask("SM")
sessions = [
    TuningSession(
        f"t{{i}}/s0", f"t{{i}}",
        RandomSearchTuner(syr2k_space(), seed=5),
        Syr2kPerformanceModel(task), 7, seed=i,
    )
    for i in range(2)
]
SessionManager(
    DyingStub(), sessions=sessions, log_path={str(log)!r}
).run()
os._exit(99)  # must not be reached
"""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
        proc = subprocess.run(
            [sys.executable, "-c", child],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 23, proc.stderr
        killed = replay_log(log)
        assert sum(len(e["evals"]) for e in killed.values()) >= 1

        sessions = [
            make_session(
                model, f"t{i}/s0", f"t{i}", budget=7, tuner_seed=5,
                seed=i,
            )
            for i in range(2)
        ]
        manager = SessionManager(
            StubService(), sessions=sessions, log_path=log, resume=True
        )
        manager.run()
        manager.close()
        reference = run_tuner(
            RandomSearchTuner(syr2k_space(), seed=5), model, 7
        )
        for session in sessions:
            assert session.state == DONE
            assert session.history.indices == reference.history.indices
            assert session.history.runtimes == reference.history.runtimes
        # the final log replays to those same histories, exactly once
        final = replay_log(log)
        for session in sessions:
            evals = final[session.session_id]["evals"]
            assert [i for _, i, _ in evals] == list(
                session.history.indices
            )
            assert [r for _, _, r in evals] == list(
                session.history.runtimes
            )


class TestRealService:
    def test_small_run_through_prediction_service(self, model):
        from repro.serve import PredictionService

        sessions = [
            make_session(model, f"t{i}/s0", f"t{i}", budget=4, tuner_seed=2)
            for i in range(2)
        ]
        with PredictionService(max_batch_size=4) as service:
            with SessionManager(service, sessions=sessions) as manager:
                manager.run()
        reference = run_tuner(
            RandomSearchTuner(syr2k_space(), seed=2), model, 4
        )
        for session in sessions:
            assert session.state == DONE
            assert session.history.indices == reference.history.indices
            assert session.history.runtimes == reference.history.runtimes
