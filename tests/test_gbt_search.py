"""Tests for the randomized hyperparameter search."""

import numpy as np
import pytest

from repro.errors import ModelNotFittedError
from repro.gbt.search import (
    Choice,
    IntUniform,
    LogUniform,
    RandomizedSearch,
    Uniform,
    default_search_space,
)


class TestDistributions:
    def test_choice(self, rng):
        c = Choice([1, 2, 3])
        assert all(c.sample(rng) in (1, 2, 3) for _ in range(20))

    def test_choice_empty(self):
        with pytest.raises(ValueError):
            Choice([])

    def test_uniform_bounds(self, rng):
        u = Uniform(2.0, 3.0)
        samples = [u.sample(rng) for _ in range(50)]
        assert all(2.0 <= s <= 3.0 for s in samples)

    def test_uniform_invalid(self):
        with pytest.raises(ValueError):
            Uniform(3.0, 2.0)

    def test_loguniform_bounds(self, rng):
        lu = LogUniform(0.01, 1.0)
        samples = [lu.sample(rng) for _ in range(100)]
        assert all(0.01 <= s <= 1.0 for s in samples)
        # log-uniform: about half the samples below the geometric mean 0.1
        below = sum(s < 0.1 for s in samples)
        assert 25 <= below <= 75

    def test_loguniform_invalid(self):
        with pytest.raises(ValueError):
            LogUniform(0.0, 1.0)

    def test_intuniform_inclusive(self, rng):
        iu = IntUniform(1, 3)
        seen = {iu.sample(rng) for _ in range(100)}
        assert seen == {1, 2, 3}

    def test_default_space_keys(self):
        space = default_search_space()
        # The paper's tuned hyperparameters are all present.
        for key in ("n_estimators", "learning_rate", "max_depth",
                    "min_samples_leaf"):
            assert key in space


class TestRandomizedSearch:
    @pytest.fixture()
    def data(self, rng):
        x = rng.random((250, 4))
        y = 2 * x[:, 0] - x[:, 3] + 0.05 * rng.normal(size=250)
        return x, y

    def test_finds_reasonable_model(self, data):
        x, y = data
        search = RandomizedSearch(n_iterations=5, seed=0)
        result = search.fit(x, y)
        pred = result.model.predict(x)
        assert np.corrcoef(pred, y)[0, 1] > 0.9

    def test_history_recorded(self, data):
        x, y = data
        search = RandomizedSearch(n_iterations=4, seed=0)
        result = search.fit(x, y)
        assert len(result.history) == 4
        assert result.best_score <= min(s for _, s in result.history) + 1e-12

    def test_deterministic(self, data):
        x, y = data
        a = RandomizedSearch(n_iterations=3, seed=5).fit(x, y)
        b = RandomizedSearch(n_iterations=3, seed=5).fit(x, y)
        assert a.best_params == b.best_params

    def test_predict_before_fit_raises(self):
        with pytest.raises(ModelNotFittedError):
            RandomizedSearch().predict(np.zeros((1, 4)))

    def test_too_few_rows(self):
        with pytest.raises(ValueError):
            RandomizedSearch().fit(np.zeros((3, 2)), np.zeros(3))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RandomizedSearch(n_iterations=0)
        with pytest.raises(ValueError):
            RandomizedSearch(validation_fraction=0.0)
