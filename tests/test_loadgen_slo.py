"""Histogram quantile-edge math, SLO policy gating, report round-trips."""

from __future__ import annotations

import math

import pytest

from repro.errors import LoadgenError
from repro.loadgen import (
    DEFAULT_SLO,
    SLOPolicy,
    SLOReport,
    StreamingHistogram,
    TenantSlice,
)


def _report(**overrides) -> SLOReport:
    base = dict(
        mode="open",
        arrival="poisson",
        rps=100.0,
        duration_s=1.0,
        seed=7,
        schedule_digest="a" * 24,
        workload_digest="b" * 24,
        offered=100,
        ok=100,
        errors=0,
        shed=0,
        timeouts=0,
        degraded=0,
        p50_ms=5.0,
        p95_ms=20.0,
        p99_ms=40.0,
        mean_ms=8.0,
        max_ms=50.0,
        elapsed_s=1.01,
        achieved_rps=99.0,
        tenants={},
    )
    base.update(overrides)
    return SLOReport(**base)


class TestStreamingHistogram:
    def test_bucket_edges_are_pure_functions_of_layout(self):
        h = StreamingHistogram(lo=1e-5, hi=1e3, buckets_per_decade=16)
        # 8 decades x 16 buckets, edges geometric from lo.
        assert len(h.counts) == 128
        assert h.edges[0] == pytest.approx(1e-5)
        assert h.edges[16] == pytest.approx(1e-4)
        assert h.edges[-1] == pytest.approx(1e3)

    def test_single_observation_quantile_pins_owning_bucket(self):
        h = StreamingHistogram()
        h.observe(1.0)
        # 1.0 lands exactly on edge index 80 (= 5 decades * 16); the
        # nearest-rank + full-bucket interpolation rule returns the
        # bucket's upper edge.
        expected = 1e-5 * 10.0 ** (81 / 16)
        assert h.quantile(0.5) == pytest.approx(expected)
        assert h.quantile(0.0) == pytest.approx(expected)
        assert h.quantile(1.0) == pytest.approx(expected)

    def test_intra_bucket_linear_interpolation(self):
        h = StreamingHistogram()
        for _ in range(4):
            h.observe(0.010)  # all four share one bucket
        k = h._bucket(0.010)
        lower, upper = h.edges[k], h.edges[k + 1]
        # ranks 1..4 of 4: q=0.25 -> frac 1/4, q=1.0 -> frac 4/4
        assert h.quantile(0.25) == pytest.approx(lower + 0.25 * (upper - lower))
        assert h.quantile(1.00) == pytest.approx(upper)

    def test_quantiles_monotone_across_buckets(self):
        h = StreamingHistogram()
        for v in (0.001, 0.002, 0.004, 0.008, 0.016, 0.25, 1.0):
            h.observe(v)
        qs = [h.quantile(q) for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)]
        assert qs == sorted(qs)

    def test_clamping_outside_span(self):
        h = StreamingHistogram(lo=1e-3, hi=1e1, buckets_per_decade=4)
        h.observe(1e-9)   # below lo -> first bucket
        h.observe(1e6)    # above hi -> last bucket
        assert h.counts[0] == 1
        assert h.counts[-1] == 1
        assert h.n == 2

    def test_merge_matches_single_stream(self):
        a, b, ref = (StreamingHistogram() for _ in range(3))
        for i, v in enumerate([0.001, 0.01, 0.02, 0.5, 1.5, 0.004]):
            (a if i % 2 else b).observe(v)
            ref.observe(v)
        a.merge(b)
        assert a.n == ref.n
        assert a.total == pytest.approx(ref.total)
        for q in (0.25, 0.5, 0.95):
            assert a.quantile(q) == pytest.approx(ref.quantile(q))

    def test_merge_layout_mismatch_rejected(self):
        with pytest.raises(LoadgenError):
            StreamingHistogram().merge(StreamingHistogram(lo=1e-4))

    def test_empty_and_invalid(self):
        h = StreamingHistogram()
        assert h.quantile(0.5) == 0.0
        assert h.mean == 0.0
        with pytest.raises(LoadgenError):
            h.quantile(1.5)
        with pytest.raises(LoadgenError):
            h.observe(-0.1)
        with pytest.raises(LoadgenError):
            StreamingHistogram(lo=1.0, hi=0.1)

    def test_moments_are_exact_not_bucketed(self):
        h = StreamingHistogram()
        for v in (0.011, 0.013):
            h.observe(v)
        assert h.mean == pytest.approx(0.012)
        assert h.min == pytest.approx(0.011)
        assert h.max == pytest.approx(0.013)
        assert not math.isinf(h.snapshot()["min_s"])


class TestGoodputAccounting:
    def test_degraded_and_shed_do_not_count_as_goodput(self):
        r = _report(
            offered=100, ok=90, shed=4, degraded=3, errors=2, timeouts=1
        )
        assert r.goodput == pytest.approx(0.90)
        assert r.completed == 93
        assert r.error_rate == pytest.approx(0.03)
        assert r.shed_rate == pytest.approx(0.04)
        assert r.degraded_rate == pytest.approx(0.03)

    def test_empty_offered_is_vacuously_conformant(self):
        r = _report(offered=0, ok=0)
        assert r.goodput == 1.0
        assert r.error_rate == 0.0
        assert r.check(DEFAULT_SLO) == []


class TestSLOPolicy:
    def test_default_passes_healthy_report(self):
        assert _report().check(DEFAULT_SLO) == []

    def test_each_threshold_fires(self):
        policy = SLOPolicy()
        cases = {
            "p50_ms": _report(p50_ms=60.0),
            "p95_ms": _report(p95_ms=600.0),
            "p99_ms": _report(p99_ms=2500.0),
            "goodput": _report(ok=50, shed=50),
            "error_rate": _report(ok=99, errors=1),
            "shed_rate": _report(ok=97, shed=3),
            "degraded_rate": _report(ok=90, degraded=10),
        }
        for name, report in cases.items():
            names = [v.name for v in report.check(policy)]
            assert name in names, (name, names)

    def test_none_ceiling_ungates_latency(self):
        lax = SLOPolicy(max_p50_ms=None, max_p95_ms=None, max_p99_ms=None)
        assert _report(p50_ms=1e6, p95_ms=1e6, p99_ms=1e6).check(lax) == []

    def test_json_round_trip_and_unknown_fields(self):
        policy = SLOPolicy(min_goodput=0.9, max_shed_rate=0.1)
        assert SLOPolicy.from_json(policy.to_json()) == policy
        with pytest.raises(LoadgenError):
            SLOPolicy.from_json({"max_p42_ms": 1.0})

    def test_from_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text('{"min_goodput": 0.5}')
        assert SLOPolicy.from_file(path).min_goodput == 0.5
        with pytest.raises(LoadgenError):
            SLOPolicy.from_file(tmp_path / "missing.json")

    def test_invalid_thresholds(self):
        with pytest.raises(LoadgenError):
            SLOPolicy(max_p50_ms=0.0)
        with pytest.raises(LoadgenError):
            SLOPolicy(min_goodput=1.5)


class TestSLOReport:
    def test_json_round_trip_is_exact(self):
        r = _report(
            tenants={
                "tenant-0": TenantSlice(
                    offered=50, ok=48, errors=1, shed=1, timeouts=0,
                    degraded=0, p50_ms=4.0, p95_ms=18.0, p99_ms=30.0,
                ),
            },
            sessions={"n_sessions": 2, "completed": 10, "fairness_jain": 1.0},
        )
        assert SLOReport.from_json(r.to_json()).to_json() == r.to_json()

    def test_deterministic_payload_excludes_wall_clock(self):
        a = _report(elapsed_s=1.0, achieved_rps=100.0, p95_ms=10.0)
        b = _report(elapsed_s=9.9, achieved_rps=11.0, p95_ms=999.0)
        assert a.deterministic_payload() == b.deterministic_payload()

    def test_render_mentions_the_verdict_inputs(self):
        text = _report().render()
        for needle in ("goodput", "p95", "schedule digest", "workload digest"):
            assert needle in text
