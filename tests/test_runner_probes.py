"""Structural tests on probe construction (ICL/query disjointness etc.)."""

import numpy as np
import pytest

from repro.core.grid import ExperimentSpec
from repro.core.runner import _dataset, _probes_for


@pytest.fixture(scope="module")
def dataset():
    return _dataset("SM", 20250705)


class TestRandomProbes:
    def test_icl_and_queries_disjoint(self, dataset):
        spec = ExperimentSpec("SM", "random", 10, 0, 1, n_queries=5)
        probes = _probes_for(spec, dataset)
        for icl_rows, query_row in probes:
            assert query_row not in set(icl_rows.tolist())

    def test_all_five_sets_disjoint(self, dataset):
        rows_per_set = []
        for set_id in range(5):
            spec = ExperimentSpec("SM", "random", 10, set_id, 1)
            probes = _probes_for(spec, dataset)
            rows_per_set.append(frozenset(probes[0][0].tolist()))
        for i in range(5):
            for j in range(i + 1, 5):
                assert not (rows_per_set[i] & rows_per_set[j])

    def test_same_sets_across_seeds(self, dataset):
        """The example material depends on (size, n_icl) only, so seeds
        and selection runs compare like-for-like."""
        a = _probes_for(ExperimentSpec("SM", "random", 10, 1, 1), dataset)
        b = _probes_for(ExperimentSpec("SM", "random", 10, 1, 2), dataset)
        np.testing.assert_array_equal(a[0][0], b[0][0])
        assert a[0][1] == b[0][1]

    def test_queries_shared_across_sets(self, dataset):
        """All five sets predict the same queries (paired comparison)."""
        a = _probes_for(ExperimentSpec("SM", "random", 10, 0, 1), dataset)
        b = _probes_for(ExperimentSpec("SM", "random", 10, 3, 1), dataset)
        assert [q for _, q in a] == [q for _, q in b]


class TestCuratedProbes:
    def test_each_query_has_own_neighborhood(self, dataset):
        spec = ExperimentSpec("SM", "curated", 10, 0, 1, n_queries=3)
        probes = _probes_for(spec, dataset)
        queries = [q for _, q in probes]
        assert len(set(queries)) == len(queries) or len(queries) <= 3

    def test_examples_near_query(self, dataset):
        spec = ExperimentSpec("SM", "curated", 15, 0, 1, n_queries=2)
        for icl_rows, query_row in _probes_for(spec, dataset):
            qidx = int(dataset.indices[query_row])
            dist = dataset.space.pairwise_weighted_distances(
                qidx, dataset.indices[icl_rows]
            )
            # Minimal-edit-distance curation: all within ~2 weighted units.
            assert dist.max() < 2.5

    def test_curated_independent_of_seed_field(self, dataset):
        a = _probes_for(ExperimentSpec("SM", "curated", 10, 0, 1), dataset)
        b = _probes_for(ExperimentSpec("SM", "curated", 10, 0, 3), dataset)
        np.testing.assert_array_equal(a[0][0], b[0][0])
