"""Tests for the surrogate LM's logit computation."""

import numpy as np
import pytest

from repro.errors import GenerationError
from repro.llm.model import LMConfig, SurrogateLM


@pytest.fixture(scope="module")
def sm_prompt_ids(tokenizer):
    text = (
        "size is SM, outer_loop_tiling_factor is 80\n"
        "Performance: 0.0022155\n\n"
        "size is SM, outer_loop_tiling_factor is 64\n"
        "Performance: 0.0031921\n\n"
        "size is SM, outer_loop_tiling_factor is 128\n"
        "Performance:"
    )
    return np.asarray(tokenizer.encode(text), dtype=np.int64)


# module-scoped tokenizer/lm come from conftest (session-scoped)


class TestConfig:
    def test_invalid_floor(self):
        with pytest.raises(ValueError):
            LMConfig(support_floor=0.0)

    def test_invalid_support(self):
        with pytest.raises(ValueError):
            LMConfig(max_support=0)

    def test_ablate(self):
        cfg = LMConfig().ablate(use_induction=False)
        assert not cfg.use_induction and cfg.use_format


class TestDetectSize:
    def test_sm_detected(self, lm, sm_prompt_ids):
        assert lm.detect_size(sm_prompt_ids) == "SM"

    def test_xl_detected(self, lm, tokenizer):
        ids = tokenizer.encode("size is XL, size is XL, sizes: S, SM, XL")
        assert lm.detect_size(np.asarray(ids)) == "XL"

    def test_no_size_none(self, lm, tokenizer):
        ids = tokenizer.encode("nothing relevant here")
        assert lm.detect_size(np.asarray(ids)) is None

    def test_empty_none(self, lm):
        assert lm.detect_size(np.array([], dtype=np.int64)) is None


class TestLogits:
    def test_sorted_support(self, lm, sm_prompt_ids):
        ids, logits = lm.next_token_logits(sm_prompt_ids, [], 1, 0)
        assert (np.diff(ids) > 0).all()
        assert ids.shape == logits.shape

    def test_empty_context_raises(self, lm):
        with pytest.raises(GenerationError):
            lm.next_token_logits(np.array([], dtype=np.int64), [], 1, 0)

    def test_support_cap(self, lm, sm_prompt_ids):
        ids, _ = lm.next_token_logits(sm_prompt_ids, ["0", "."], 1, 2)
        assert ids.size <= lm.config.max_support

    def test_seed_changes_logits_not_support(self, lm, sm_prompt_ids):
        """Section IV-A: identical token sets, slightly altered logits."""
        ids1, lg1 = lm.next_token_logits(sm_prompt_ids, ["0"], 1, 1)
        ids2, lg2 = lm.next_token_logits(sm_prompt_ids, ["0"], 2, 1)
        assert np.array_equal(ids1, ids2)
        assert not np.array_equal(lg1, lg2)
        # ...and the perturbation is small.
        assert np.abs(lg1 - lg2).max() < 1.0

    def test_deterministic_per_seed(self, lm, sm_prompt_ids):
        a = lm.next_token_logits(sm_prompt_ids, ["0"], 5, 1)
        b = lm.next_token_logits(sm_prompt_ids, ["0"], 5, 1)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_first_token_is_demonstrated_start(self, lm, tokenizer, sm_prompt_ids):
        """The top candidate at the first position starts like the ICL
        values (here all SM values start '0')."""
        ids, logits = lm.next_token_logits(sm_prompt_ids, [], 1, 0)
        top = int(ids[np.argmax(logits)])
        assert tokenizer.vocab.string_of(top) == "0"

    def test_dot_follows_integer(self, lm, tokenizer, sm_prompt_ids):
        ids, logits = lm.next_token_logits(sm_prompt_ids, ["0"], 1, 1)
        top = int(ids[np.argmax(logits)])
        assert tokenizer.vocab.string_of(top) == "."

    def test_fraction_support_is_broad(self, lm, sm_prompt_ids):
        """Hundreds of digit chunks are 'selectable' at fraction positions
        (Table II)."""
        ids, _ = lm.next_token_logits(sm_prompt_ids, ["0", "."], 1, 2)
        assert ids.size > 50


class TestAblation:
    def test_no_format_changes_behavior(self, tokenizer, sm_prompt_ids):
        full = SurrogateLM(tokenizer.vocab)
        bare = SurrogateLM(tokenizer.vocab, LMConfig(use_format=False))
        f_ids, _ = full.next_token_logits(sm_prompt_ids, ["0"], 1, 1)
        b_ids, _ = bare.next_token_logits(sm_prompt_ids, ["0"], 1, 1)
        assert not np.array_equal(f_ids, b_ids)

    def test_induction_only_still_works(self, tokenizer, sm_prompt_ids):
        lm = SurrogateLM(
            tokenizer.vocab,
            LMConfig(use_format=False, use_unigram=False, use_prior=False),
        )
        ids, logits = lm.next_token_logits(sm_prompt_ids, [], 1, 0)
        assert ids.size >= 1

    def test_all_off_falls_back_to_eot(self, tokenizer):
        lm = SurrogateLM(
            tokenizer.vocab,
            LMConfig(
                use_format=False,
                use_unigram=False,
                use_prior=False,
                use_induction=False,
            ),
        )
        ids, logits = lm.next_token_logits(np.array([5]), [], 1, 0)
        assert ids.tolist() == [tokenizer.vocab.specials.eot]

    def test_model_seed_changes_prior(self, tokenizer, sm_prompt_ids):
        a = SurrogateLM(tokenizer.vocab, model_seed=0)
        b = SurrogateLM(tokenizer.vocab, model_seed=1)
        _, la = a.next_token_logits(sm_prompt_ids, ["0", "."], 1, 2)
        _, lb = b.next_token_logits(sm_prompt_ids, ["0", "."], 1, 2)
        assert la.shape != lb.shape or not np.allclose(la, lb)
