"""Shutdown/timeout race coverage for the serving stack.

These tests pin the tricky lifecycle corners: a timed-out request whose
work completes anyway (the late completion must be counted, not leaked),
overload errors reporting observed queue depth, graceful drain with a
batch in flight, and ``submit`` racing ``close`` — which must always end
in a completed ``Response`` or a typed error, never a hung future.
"""

import threading
import time

import pytest

from repro.core.surrogate import DiscriminativeSurrogate
from repro.errors import (
    RequestTimeoutError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.serve import PredictionService, Request


@pytest.fixture(scope="module")
def examples(sm_dataset):
    return [
        (sm_dataset.config(i), float(sm_dataset.runtimes[i]))
        for i in range(4)
    ]


class SlowSurrogate(DiscriminativeSurrogate):
    """Surrogate with an artificial per-prediction delay (test control)."""

    delay_s = 0.05

    def predict_parts(self, parts, seed=0, analysis=None):
        time.sleep(self.delay_s)
        return super().predict_parts(parts, seed=seed, analysis=analysis)


def make_request(sm_dataset, examples, query=42, seed=0, **kw):
    return Request(
        examples=examples,
        query_config=sm_dataset.config(query),
        seed=seed,
        size="SM",
        **kw,
    )


class TestLateDiscards:
    def test_late_completion_is_counted(self, sm_task, sm_dataset, examples):
        """Timeout while the batch is running: the eventual result is
        discarded, and that discard shows up in the stats."""
        slow = SlowSurrogate(sm_task)
        slow.delay_s = 0.6
        svc = PredictionService(
            slow, max_batch_size=1, max_wait_s=0.0, workers=1
        )
        try:
            with pytest.raises(RequestTimeoutError):
                # 0.2s deadline, 0.6s of work: the batch has started long
                # before the deadline, so cancel fails and the work
                # completes with nobody left to read it.
                svc.submit(
                    make_request(sm_dataset, examples, timeout_s=0.2)
                )
        finally:
            svc.close(drain=True)  # waits out the in-flight batch
        stats = svc.stats()
        assert stats.n_timeouts == 1
        assert stats.n_late_discards == 1
        assert "late completions discarded" in stats.render()

    def test_cancelled_before_start_is_not_a_discard(
        self, sm_task, sm_dataset, examples
    ):
        """A request cancelled while still queued never ran: no discard."""
        slow = SlowSurrogate(sm_task)
        slow.delay_s = 0.3
        svc = PredictionService(
            slow,
            max_batch_size=1,
            max_wait_s=0.0,
            workers=1,
            max_inflight_batches=1,
            queue_capacity=8,
        )
        try:
            # Occupy the single worker, then time out a queued request.
            blocker = svc.submit_async(
                make_request(sm_dataset, examples, seed=1)
            )
            with pytest.raises(RequestTimeoutError):
                svc.submit(
                    make_request(sm_dataset, examples, seed=2, timeout_s=0.05)
                )
            blocker.result(timeout=10)
        finally:
            svc.close(drain=True)
        stats = svc.stats()
        assert stats.n_timeouts == 1
        assert stats.n_late_discards == 0


class TestOverloadReporting:
    def test_error_carries_capacity_and_depth(self):
        exc = ServiceOverloadedError(8, depth=8)
        assert exc.capacity == 8
        assert exc.depth == 8
        assert "8/8 queued" in str(exc)

    def test_depth_defaults_to_capacity_in_message(self):
        exc = ServiceOverloadedError(4)
        assert exc.depth is None
        assert "4/4 queued" in str(exc)

    def test_overloaded_service_reports_depth(
        self, sm_task, sm_dataset, examples
    ):
        slow = SlowSurrogate(sm_task)
        slow.delay_s = 0.1
        svc = PredictionService(
            slow,
            max_batch_size=1,
            max_wait_s=0.0,
            queue_capacity=1,
            workers=1,
            max_inflight_batches=1,
        )
        depths = []
        try:
            for i in range(20):
                try:
                    svc.submit_async(
                        make_request(sm_dataset, examples, seed=i)
                    )
                except ServiceOverloadedError as exc:
                    depths.append(exc.depth)
        finally:
            svc.close(drain=True)
        assert depths, "overload never tripped"
        assert all(d is not None and 0 <= d <= 1 for d in depths)


class TestShutdownRaces:
    def test_drain_resolves_inflight_batch(self, sm_task, sm_dataset, examples):
        """close(drain=True) with work queued and running: every future
        resolves to a Response — none dropped, none hung."""
        slow = SlowSurrogate(sm_task)
        slow.delay_s = 0.05
        svc = PredictionService(
            slow, max_batch_size=2, max_wait_s=0.0, workers=1,
            max_inflight_batches=1,
        )
        futures = [
            svc.submit_async(make_request(sm_dataset, examples, seed=i))
            for i in range(6)
        ]
        svc.close(drain=True)
        for f in futures:
            assert f.result(timeout=10).prediction is not None
        assert svc.stats().n_completed == 6

    def test_submit_racing_close_never_hangs(
        self, sm_task, sm_dataset, examples
    ):
        """Hammer submit against close: every submission deterministically
        ends in a Response or a typed service error within the deadline."""
        slow = SlowSurrogate(sm_task)
        slow.delay_s = 0.002
        for trial in range(4):
            svc = PredictionService(
                slow, max_batch_size=4, max_wait_s=0.0, workers=2
            )
            futures, errors = [], []
            stop = threading.Event()

            def pump():
                for i in range(200):
                    if stop.is_set():
                        break
                    try:
                        futures.append(
                            svc.submit_async(
                                make_request(sm_dataset, examples, seed=i)
                            )
                        )
                    except (ServiceClosedError, ServiceOverloadedError) as exc:
                        errors.append(exc)
                        if isinstance(exc, ServiceClosedError):
                            break

            pumper = threading.Thread(target=pump)
            pumper.start()
            time.sleep(0.01 * (trial + 1))
            svc.close(drain=True)
            stop.set()
            pumper.join(timeout=10)
            assert not pumper.is_alive(), "submitter wedged against close"
            for f in futures:
                # Admitted before the sentinel → a real Response (drain);
                # admitted after → swept/cancelled or closed, both typed.
                if f.cancelled():
                    continue
                try:
                    resp = f.result(timeout=10)
                except ServiceClosedError:
                    continue
                assert resp.prediction is not None

    def test_submit_after_close_still_typed(self, sm_dataset, examples):
        svc = PredictionService()
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.submit(make_request(sm_dataset, examples))
