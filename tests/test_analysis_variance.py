"""Tests for the seed/prompt variance decomposition."""

import dataclasses

import numpy as np
import pytest

from repro.analysis.variance import seed_variance_decomposition
from repro.core import quick_grid, run_grid
from repro.core.grid import ExperimentSpec
from repro.core.runner import ProbeResult
from repro.errors import AnalysisError


def _probe(seed, set_id, query, predicted):
    spec = ExperimentSpec("SM", "random", 5, set_id, seed, n_queries=1)
    return ProbeResult(
        spec=spec,
        query_index=query,
        truth=0.002,
        predicted=predicted,
        predicted_text=str(predicted),
        generated_text="",
        exact_copy=False,
        icl_value_strings=[],
        value_steps=[],
        n_prompt_tokens=100,
    )


class TestDecomposition:
    def test_prompt_dominated(self):
        """Same value per prompt regardless of seed -> prompt share 1."""
        probes = []
        for q, value in ((0, 0.001), (1, 0.004)):
            for seed in (1, 2, 3):
                probes.append(_probe(seed, 0, q, value))
        d = seed_variance_decomposition(probes)
        assert d.within_seed_var == pytest.approx(0.0)
        assert d.prompt_share == pytest.approx(1.0)
        assert d.n_prompts == 2 and d.n_total == 6

    def test_seed_dominated(self):
        """Same prompt-level mean, wild per-seed scatter -> low share."""
        probes = []
        for q in (0, 1):
            for seed, value in ((1, 0.001), (2, 0.008)):
                probes.append(_probe(seed, 0, q, value))
        d = seed_variance_decomposition(probes)
        assert d.prompt_share < 0.5

    def test_unparsed_skipped(self):
        probes = [
            _probe(1, 0, 0, 0.001), _probe(2, 0, 0, 0.001),
            _probe(1, 0, 1, 0.004), _probe(2, 0, 1, 0.004),
            _probe(3, 0, 1, None),
        ]
        d = seed_variance_decomposition(probes)
        assert d.n_total == 4

    def test_insufficient_groups(self):
        with pytest.raises(AnalysisError):
            seed_variance_decomposition([_probe(1, 0, 0, 0.001)])

    def test_on_real_grid(self):
        """The paper's hypothesis holds for the surrogate LM: the prompt
        explains most of the prediction variance."""
        probes = run_grid(
            quick_grid(
                sizes=("SM",), icl_counts=(5, 20), n_sets=2,
                seeds=(1, 2, 3), n_queries=2,
            ),
            workers=2,
        )
        d = seed_variance_decomposition(probes)
        assert d.n_prompts >= 4
        assert d.prompt_share > 0.5
