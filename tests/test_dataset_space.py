"""Tests for ConfigSpace: bijection, distances, neighbourhoods."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataset.parameters import BooleanParameter, OrdinalParameter
from repro.dataset.space import ConfigSpace
from repro.errors import (
    ConfigSpaceError,
    InvalidConfigurationError,
    UnknownParameterError,
)


@pytest.fixture()
def small_space():
    return ConfigSpace(
        (
            BooleanParameter("a"),
            OrdinalParameter("t", (4, 8, 16)),
            BooleanParameter("b"),
        ),
        name="small",
    )


class TestConstruction:
    def test_size(self, small_space):
        assert small_space.size == 2 * 3 * 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigSpaceError, match="duplicate"):
            ConfigSpace((BooleanParameter("a"), BooleanParameter("a")))

    def test_empty_rejected(self):
        with pytest.raises(ConfigSpaceError):
            ConfigSpace(())

    def test_parameter_lookup(self, small_space):
        assert small_space.parameter("t").name == "t"
        with pytest.raises(UnknownParameterError):
            small_space.parameter("zzz")

    def test_contains(self, small_space):
        assert "a" in small_space and "zzz" not in small_space

    def test_len_is_param_count(self, small_space):
        assert len(small_space) == 3


class TestValidation:
    def test_missing_param(self, small_space):
        with pytest.raises(InvalidConfigurationError, match="missing"):
            small_space.validate({"a": True, "t": 4})

    def test_extra_param(self, small_space):
        with pytest.raises(InvalidConfigurationError, match="unknown"):
            small_space.validate({"a": True, "t": 4, "b": False, "x": 1})

    def test_out_of_domain(self, small_space):
        with pytest.raises(InvalidConfigurationError):
            small_space.validate({"a": True, "t": 5, "b": False})


class TestBijection:
    def test_roundtrip_all(self, small_space):
        seen = set()
        for i in range(small_space.size):
            cfg = small_space.from_index(i)
            j = small_space.to_index(cfg)
            assert j == i
            seen.add(tuple(sorted(cfg.items())))
        assert len(seen) == small_space.size

    def test_out_of_range(self, small_space):
        with pytest.raises(InvalidConfigurationError):
            small_space.from_index(small_space.size)
        with pytest.raises(InvalidConfigurationError):
            small_space.from_index(-1)

    def test_ordinal_matrix_matches_from_index(self, small_space):
        digits = small_space.ordinal_matrix()
        for i in (0, 3, 7, small_space.size - 1):
            cfg = small_space.from_index(i)
            expected = [
                p.index_of(cfg[p.name]) for p in small_space.parameters
            ]
            assert digits[i].tolist() == expected

    def test_ordinal_matrix_subset(self, small_space):
        full = small_space.ordinal_matrix()
        sub = small_space.ordinal_matrix([2, 5])
        np.testing.assert_array_equal(sub, full[[2, 5]])

    def test_ordinal_matrix_range_check(self, small_space):
        with pytest.raises(InvalidConfigurationError):
            small_space.ordinal_matrix([small_space.size])

    def test_iteration_covers_space(self, small_space):
        assert len(list(small_space)) == small_space.size

    @given(st.integers(min_value=0, max_value=11))
    @settings(max_examples=12, deadline=None)
    def test_roundtrip_property(self, i):
        space = ConfigSpace(
            (BooleanParameter("a"), OrdinalParameter("t", (4, 8, 16)),
             BooleanParameter("b"))
        )
        assert space.to_index(space.from_index(i)) == i


class TestSampling:
    def test_without_replacement_distinct(self, small_space, rng):
        idx = small_space.sample_indices(rng, small_space.size)
        assert len(set(idx.tolist())) == small_space.size

    def test_too_many_raises(self, small_space, rng):
        with pytest.raises(ValueError):
            small_space.sample_indices(rng, small_space.size + 1)

    def test_with_replacement_allows_more(self, small_space, rng):
        idx = small_space.sample_indices(rng, 100, replace=True)
        assert idx.shape == (100,)


class TestDistances:
    def test_hamming_zero_to_self(self, small_space):
        cfg = small_space.from_index(5)
        assert small_space.hamming_distance(cfg, cfg) == 0

    def test_hamming_counts_diffs(self, small_space):
        a = {"a": False, "t": 4, "b": False}
        b = {"a": True, "t": 4, "b": True}
        assert small_space.hamming_distance(a, b) == 2

    def test_weighted_uses_rank(self, small_space):
        a = {"a": False, "t": 4, "b": False}
        b = {"a": False, "t": 8, "b": False}
        c = {"a": False, "t": 16, "b": False}
        assert small_space.weighted_distance(a, b) < small_space.weighted_distance(a, c)

    def test_pairwise_matches_scalar(self, small_space):
        center = 5
        dist = small_space.pairwise_weighted_distances(center)
        center_cfg = small_space.from_index(center)
        for i in (0, 3, 11):
            expected = small_space.weighted_distance(
                center_cfg, small_space.from_index(i)
            )
            assert dist[i] == pytest.approx(expected)

    def test_pairwise_subset(self, small_space):
        sub = small_space.pairwise_weighted_distances(0, [0, 1, 2])
        assert sub.shape == (3,)
        assert sub[0] == 0.0


class TestNeighbors:
    def test_count(self, small_space):
        # sum over params of (cardinality - 1)
        assert len(small_space.neighbors(0)) == (1 + 2 + 1)

    def test_all_hamming_one(self, small_space):
        base = small_space.from_index(7)
        for n in small_space.neighbors(7):
            assert small_space.hamming_distance(base, small_space.from_index(n)) == 1

    def test_excludes_self(self, small_space):
        assert 7 not in small_space.neighbors(7)
