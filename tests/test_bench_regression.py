"""Benchmark regression gate: parsing, comparison, baseline round-trips."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BaselineMetric,
    collect_metrics,
    compare,
    load_baseline,
    load_report,
    parse_percent,
    parse_ratio,
    render_report,
    write_report,
)
from repro.bench.regression import OPTIONAL_REPORT_SOURCES, REPORT_SOURCES
from repro.errors import ExperimentError


class TestParsers:
    def test_parse_ratio(self):
        text = "prefix cache on | 396.5 | 0.2\nspeedup: 2.52x\n"
        assert parse_ratio(text) == pytest.approx(2.52)

    def test_parse_ratio_custom_label(self):
        assert parse_ratio("gain: 10x", label="gain") == pytest.approx(10.0)

    def test_parse_ratio_missing(self):
        with pytest.raises(ExperimentError):
            parse_ratio("no trailer here")

    def test_parse_percent(self):
        text = "tracing on: 2487.9 req/s\noverhead:    3.7% (1031 spans)\n"
        assert parse_percent(text) == pytest.approx(0.037)

    def test_parse_percent_negative(self):
        assert parse_percent("overhead: -1.0%") == pytest.approx(-0.01)

    def test_parse_percent_missing(self):
        with pytest.raises(ExperimentError):
            parse_percent("speedup: 2.0x")


class TestBaselineMetric:
    def test_floor_higher(self):
        m = BaselineMetric(value=5.0, direction="higher")
        assert m.floor(0.2) == pytest.approx(4.0)
        assert not m.is_regression(4.0, 0.2)
        assert m.is_regression(3.99, 0.2)

    def test_floor_lower_with_abs_slack(self):
        m = BaselineMetric(value=0.04, direction="lower", abs_slack=0.05)
        assert m.floor(0.2) == pytest.approx(0.098)
        assert not m.is_regression(0.09, 0.2)
        assert m.is_regression(0.10, 0.2)

    def test_direction_validated(self):
        with pytest.raises(ExperimentError):
            BaselineMetric(value=1.0, direction="sideways")

    def test_nonpositive_higher_value_rejected(self):
        with pytest.raises(ExperimentError):
            BaselineMetric(value=0.0, direction="higher")

    def test_negative_slack_rejected(self):
        with pytest.raises(ExperimentError):
            BaselineMetric(value=1.0, abs_slack=-0.1)


class TestCompare:
    BASELINE = {
        "speedup": BaselineMetric(value=5.0, direction="higher"),
        "overhead": BaselineMetric(value=0.05, direction="lower"),
        "fyi": BaselineMetric(value=1.0, direction="higher", gate=False),
    }

    def test_improvement_and_within_tolerance_pass(self):
        current = {"speedup": 6.0, "overhead": 0.055, "fyi": 0.1}
        assert compare(current, self.BASELINE) == []

    def test_regression_past_tolerance_fails(self):
        current = {"speedup": 3.9, "overhead": 0.03}
        failures = compare(current, self.BASELINE)
        assert [f.name for f in failures] == ["speedup"]
        assert failures[0].current == pytest.approx(3.9)
        assert failures[0].allowed == pytest.approx(4.0)

    def test_lower_direction_regression(self):
        current = {"speedup": 5.0, "overhead": 0.061}
        failures = compare(current, self.BASELINE)
        assert [f.name for f in failures] == ["overhead"]

    def test_missing_gated_metric_is_a_regression(self):
        failures = compare({"overhead": 0.01}, self.BASELINE)
        assert [f.name for f in failures] == ["speedup"]
        assert failures[0].current is None
        assert "missing" in failures[0].describe()

    def test_ungated_metric_never_fails(self):
        current = {"speedup": 5.0, "overhead": 0.01, "fyi": 0.0001}
        assert compare(current, self.BASELINE) == []
        # ...even when absent entirely.
        assert compare({"speedup": 5.0, "overhead": 0.01}, self.BASELINE) == []

    def test_extra_current_metrics_ignored(self):
        current = {"speedup": 5.0, "overhead": 0.01, "brand_new": 0.0}
        assert compare(current, self.BASELINE) == []

    def test_tolerance_validated(self):
        with pytest.raises(ExperimentError):
            compare({}, self.BASELINE, tolerance=1.5)

    def test_render_report_flags_failures(self):
        current = {"speedup": 3.0, "overhead": 0.01, "fyi": 2.0}
        failures = compare(current, self.BASELINE)
        body = render_report(current, self.BASELINE, failures)
        assert "FAIL" in body
        assert "1 regression(s)" in body
        passing = render_report(
            {"speedup": 5.0, "overhead": 0.01}, self.BASELINE, []
        )
        assert "within tolerance" in passing


class TestRoundTrips:
    def test_report_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_abc.json"
        write_report(path, {"speedup": 2.5}, sha="abc123")
        assert load_report(path) == {"speedup": 2.5}
        assert json.loads(path.read_text())["sha"] == "abc123"

    def test_load_baseline(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "a": {"value": 2.0},
            "b": {"value": 0.1, "direction": "lower", "abs_slack": 0.02,
                  "gate": False},
        }))
        baseline = load_baseline(path)
        assert baseline["a"] == BaselineMetric(value=2.0)
        assert baseline["b"].direction == "lower"
        assert baseline["b"].gate is False

    def test_committed_baseline_parses_and_gates(self):
        """The real baseline.json stays loadable and internally consistent."""
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        baseline = load_baseline(root / "benchmarks" / "baseline.json")
        assert set(baseline) == set(REPORT_SOURCES) | set(
            OPTIONAL_REPORT_SOURCES
        )
        assert any(m.gate for m in baseline.values())
        # Optional benchmarks may skip on small hosts, so their reports
        # can be missing — a gated baseline entry would then fail every
        # such run.  Optional sources must stay record-only.
        for name in OPTIONAL_REPORT_SOURCES:
            assert baseline[name].gate is False

    def test_collect_metrics_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError):
            collect_metrics(tmp_path)

    def test_collect_metrics_from_reports(self, tmp_path):
        (tmp_path / "serve_throughput.txt").write_text("speedup: 5.0x\n")
        (tmp_path / "serve_tracing_overhead.txt").write_text(
            "overhead: 3.7% (1031 spans)\n"
        )
        (tmp_path / "llm_prefix_cache.txt").write_text("speedup: 2.52x\n")
        (tmp_path / "sessions_throughput.txt").write_text("speedup: 1.5x\n")
        metrics = collect_metrics(tmp_path)
        assert metrics == {
            "serve_caching_speedup": pytest.approx(5.0),
            "serve_tracing_overhead": pytest.approx(0.037),
            "prefix_reuse_speedup": pytest.approx(2.52),
            "sessions_throughput": pytest.approx(1.5),
        }

    def test_collect_metrics_optional_source_missing_is_fine(
        self, tmp_path
    ):
        """A host too small to run an optional benchmark (shard scale-out
        needs >= 4 cores) still collects the required metrics."""
        (tmp_path / "serve_throughput.txt").write_text("speedup: 5.0x\n")
        (tmp_path / "serve_tracing_overhead.txt").write_text(
            "overhead: 3.7%\n"
        )
        (tmp_path / "llm_prefix_cache.txt").write_text("speedup: 2.52x\n")
        (tmp_path / "sessions_throughput.txt").write_text("speedup: 1.5x\n")
        metrics = collect_metrics(tmp_path)
        assert "shard_throughput_speedup" not in metrics

    def test_collect_metrics_optional_source_harvested(self, tmp_path):
        (tmp_path / "serve_throughput.txt").write_text("speedup: 5.0x\n")
        (tmp_path / "serve_tracing_overhead.txt").write_text(
            "overhead: 3.7%\n"
        )
        (tmp_path / "llm_prefix_cache.txt").write_text("speedup: 2.52x\n")
        (tmp_path / "sessions_throughput.txt").write_text("speedup: 1.5x\n")
        (tmp_path / "shard_throughput.txt").write_text("speedup: 3.1x\n")
        metrics = collect_metrics(tmp_path)
        assert metrics["shard_throughput_speedup"] == pytest.approx(3.1)
