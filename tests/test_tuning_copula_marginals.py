"""Property tests for the copula's ordinal marginals."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tuning.copula import _OrdinalMarginal


class TestOrdinalMarginal:
    @given(
        st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=60)
    )
    @settings(max_examples=40, deadline=None)
    def test_z_mapping_monotone(self, values):
        m = _OrdinalMarginal(np.asarray(values), cardinality=8)
        z = m.z_of_level
        assert (np.diff(z) > 0).all(), "normal scores respect level order"

    @given(
        st.lists(st.integers(min_value=0, max_value=7), min_size=5, max_size=60)
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_at_level_scores(self, values):
        """Mapping a level's own normal score back recovers the level."""
        m = _OrdinalMarginal(np.asarray(values), cardinality=8)
        levels = np.arange(8)
        back = m.from_z(m.z_of_level[levels])
        np.testing.assert_array_equal(back, levels)

    def test_from_z_extremes_clip(self):
        m = _OrdinalMarginal(np.asarray([0, 1, 2]), cardinality=3)
        assert m.from_z(np.asarray([-50.0]))[0] == 0
        assert m.from_z(np.asarray([50.0]))[0] == 2

    def test_probabilities_sum_to_one(self):
        m = _OrdinalMarginal(np.asarray([0, 0, 1]), cardinality=4)
        assert m.probs.sum() == pytest.approx(1.0)
        # Smoothing keeps unseen levels reachable.
        assert (m.probs > 0).all()

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_sampling_frequencies_track_counts(self, seed):
        rng = np.random.default_rng(seed)
        data = np.asarray([0] * 90 + [1] * 10)
        m = _OrdinalMarginal(data, cardinality=2)
        draws = m.from_z(rng.standard_normal(400))
        share_one = float((draws == 1).mean())
        assert share_one < 0.5  # dominated by level 0
