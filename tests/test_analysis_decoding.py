"""Tests for decoding-tree enumeration (Table II machinery)."""

import math

import numpy as np
import pytest

from repro.analysis.decoding import (
    StepCandidates,
    enumerate_value_decodings,
    token_position_table,
)
from repro.errors import AnalysisError


def _step(tokens, logits, chosen=0):
    return StepCandidates(
        tokens=tuple(tokens), logits=np.asarray(logits, float), chosen=chosen
    )


@pytest.fixture()
def simple_steps():
    """Value region: '0' '.' then chunk in {002, 003} then terminator."""
    return [
        _step(["0"], [0.0]),
        _step(["."], [0.0]),
        _step(["002", "003"], [1.0, 0.0]),
        _step(["\n", "5"], [2.0, 0.0]),
    ]


class TestStepCandidates:
    def test_validation(self):
        with pytest.raises(AnalysisError):
            _step(["a"], [1.0, 2.0])
        with pytest.raises(AnalysisError):
            _step(["a"], [1.0], chosen=5)

    def test_log_probs_normalized(self):
        s = _step(["a", "b"], [1.0, 1.0])
        np.testing.assert_allclose(np.exp(s.log_probs()).sum(), 1.0)


class TestEnumerate:
    def test_all_paths_found(self, simple_steps):
        alts = enumerate_value_decodings(simple_steps)
        texts = {c.text for c in alts.candidates}
        assert texts == {"0.002", "0.003", "0.0025", "0.0035"}

    def test_probabilities_normalized(self, simple_steps):
        alts = enumerate_value_decodings(simple_steps)
        np.testing.assert_allclose(alts.probs.sum(), 1.0)

    def test_ordered_by_logprob(self, simple_steps):
        alts = enumerate_value_decodings(simple_steps)
        lps = [c.logprob for c in alts.candidates]
        assert lps == sorted(lps, reverse=True)

    def test_position_counts_follow_sampled_path(self, simple_steps):
        alts = enumerate_value_decodings(simple_steps)
        # sampled path = '0', '.', '002' then '\n' terminator
        assert alts.position_counts == [1, 1, 2]
        assert alts.naive_permutations == 2
        assert alts.sampled_text == "0.002"

    def test_cap_and_truncation(self):
        steps = [
            _step([f"{i:03d}" for i in range(100)], np.zeros(100))
            for _ in range(3)
        ]
        alts = enumerate_value_decodings(steps, max_candidates=50)
        assert len(alts.candidates) == 50
        assert alts.truncated
        assert alts.naive_permutations == 100**3

    def test_invalid_decimals_discarded(self):
        steps = [
            _step(["0"], [0.0]),
            _step(["."], [0.0]),
            _step([".", "1"], [0.0, 0.0]),  # second '.' branch is invalid
        ]
        alts = enumerate_value_decodings(steps)
        assert all(c.text.count(".") <= 1 for c in alts.candidates)
        texts = {c.text for c in alts.candidates}
        assert "0.1" in texts

    def test_empty_steps_rejected(self):
        with pytest.raises(AnalysisError):
            enumerate_value_decodings([])

    def test_bad_cap_rejected(self, simple_steps):
        with pytest.raises(AnalysisError):
            enumerate_value_decodings(simple_steps, max_candidates=0)

    def test_values_parse(self, simple_steps):
        alts = enumerate_value_decodings(simple_steps)
        for c in alts.candidates:
            assert c.value == pytest.approx(float(c.text))

    def test_high_probability_path_first(self, simple_steps):
        alts = enumerate_value_decodings(simple_steps)
        # '002' has higher logit than '003', '\n' higher than '5'.
        assert alts.candidates[0].text == "0.002"

    def test_dedupes_identical_texts(self):
        """Same value text reachable via different terminators counts once."""
        steps = [
            _step(["7"], [0.0]),
            _step(["\n", "x"], [0.0, -1.0]),
        ]
        alts = enumerate_value_decodings(steps)
        assert [c.text for c in alts.candidates] == ["7"]


class TestPositionTable:
    def test_aggregation(self, simple_steps):
        a = enumerate_value_decodings(simple_steps)
        rows, perm = token_position_table([a, a])
        assert rows[0].position == 1
        assert rows[0].n_samples == 2
        assert rows[2].mean_possibilities == 2.0
        assert perm.mean_possibilities == 2.0

    def test_ragged_lengths(self, simple_steps):
        short = enumerate_value_decodings(simple_steps[:2])
        full = enumerate_value_decodings(simple_steps)
        rows, _ = token_position_table([short, full])
        assert rows[-1].n_samples == 1  # only the full trace reaches pos 3

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            token_position_table([])
