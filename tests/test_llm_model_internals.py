"""Unit tests for surrogate-LM internals: noise scheduling, analysis."""

import numpy as np
import pytest

from repro.llm.model import LMConfig, SurrogateLM
from repro.llm.scorers import FormatAnalysis


@pytest.fixture(scope="module")
def model(tokenizer):
    return SurrogateLM(tokenizer.vocab)


def _analysis(decimals: int | None, integer: bool = False) -> FormatAnalysis:
    return FormatAnalysis(
        start_votes={},
        expected_decimals=decimals,
        integer_valued=integer,
    )


class TestNoiseSchedule:
    def test_zero_outside_value(self, model):
        assert model._noise_eps([], _analysis(7)) == 0.0
        assert model._noise_eps(["Performance", ":"], _analysis(7)) == 0.0

    def test_zero_before_dot(self, model):
        assert model._noise_eps(["0"], _analysis(7)) == 0.0

    def test_first_fraction_position(self, model):
        eps = model._noise_eps(["0", "."], _analysis(7))
        assert eps == model.config.noise_eps_first

    def test_mid_fraction_position(self, model):
        eps = model._noise_eps(["0", ".", "002"], _analysis(7))
        assert eps == model.config.noise_eps_mid

    def test_last_digit_position(self, model):
        eps = model._noise_eps(["0", ".", "002", "215"], _analysis(7))
        assert eps == model.config.noise_eps_last

    def test_zero_when_complete(self, model):
        eps = model._noise_eps(["0", ".", "002", "215", "5"], _analysis(7))
        assert eps == 0.0

    def test_schedule_ordering(self, model):
        """The schedule is the calibrated first < mid < last ramp."""
        cfg = model.config
        assert cfg.noise_eps_first < cfg.noise_eps_mid < cfg.noise_eps_last


class TestPrepare:
    def test_prepare_equivalent_to_inline(self, model, tokenizer):
        text = "Performance: 0.0022155\nPerformance:"
        ids = np.asarray(tokenizer.encode(text))
        pre = model.prepare(ids)
        ids_a, logits_a = model.next_token_logits(ids, [], 1, 0, analysis=pre)
        ids_b, logits_b = model.next_token_logits(ids, [], 1, 0)
        np.testing.assert_array_equal(ids_a, ids_b)
        np.testing.assert_allclose(logits_a, logits_b)

    def test_integer_analysis_stops_after_digits(self, model, tokenizer):
        """With integer-valued demonstrations the top continuation after a
        digit is termination, not '.'."""
        text = "Performance bucket: 3\nPerformance bucket: 1\nPerformance bucket:"
        ids = np.asarray(tokenizer.encode(text))
        analysis = model.prepare(ids)
        assert analysis.integer_valued
        cand, logits = model.next_token_logits(
            ids, ["2"], 1, 1, analysis=analysis
        )
        top = int(cand[np.argmax(logits)])
        top_str = tokenizer.vocab.string_of(top)
        assert top_str in ("\n", "<|eot_id|>")


class TestSupportShape:
    def test_support_never_empty(self, model, tokenizer):
        ids = np.asarray(tokenizer.encode("Performance: 1.5\nPerformance:"))
        for step, gen in enumerate(([], ["1"], ["1", "."])):
            cand, logits = model.next_token_logits(ids, list(gen), 1, step)
            assert cand.size >= 1

    def test_all_logits_finite(self, model, tokenizer):
        ids = np.asarray(tokenizer.encode("Performance: 1.5\nPerformance:"))
        _, logits = model.next_token_logits(ids, ["1", "."], 1, 2)
        assert np.isfinite(logits).all()
