"""Tests for ICL copy-rate and prefix-cluster analysis (Figure 3)."""

import numpy as np
import pytest

from repro.analysis.copying import copy_rate, prefix_clusters, shared_prefix_len
from repro.analysis.decoding import StepCandidates, enumerate_value_decodings
from repro.errors import AnalysisError


def _step(tokens, logits, chosen=0):
    return StepCandidates(tuple(tokens), np.asarray(logits, float), chosen)


class TestSharedPrefix:
    def test_basic(self):
        assert shared_prefix_len("0.0022155", "0.0021042") == 5
        assert shared_prefix_len("abc", "abc") == 3
        assert shared_prefix_len("abc", "xyz") == 0
        assert shared_prefix_len("", "x") == 0


class TestCopyRate:
    def test_counts_exact_string_matches(self):
        rate = copy_rate(
            ["0.002", "0.003", "0.004"], ["0.002", "0.009"]
        )
        assert rate == pytest.approx(1 / 3)

    def test_string_not_numeric_equality(self):
        assert copy_rate(["0.0020"], ["0.002"]) == 0.0

    def test_empty_generated_rejected(self):
        with pytest.raises(AnalysisError):
            copy_rate([], ["x"])


class TestPrefixClusters:
    def _alts(self):
        steps = [
            _step(["0"], [0.0]),
            _step(["."], [0.0]),
            _step(["002", "003", "777"], [2.0, 1.0, -3.0]),
            _step(["\n"], [0.0]),
        ]
        return enumerate_value_decodings(steps)

    def test_mass_assigned_to_nearest_icl(self):
        alts = self._alts()
        report = prefix_clusters(alts, ["0.0021042", "0.0035551"])
        by_value = {c.icl_value: c for c in report.clusters}
        assert by_value["0.0021042"].n_candidates == 1  # "0.002"
        assert by_value["0.0035551"].n_candidates == 1  # "0.003"
        assert report.densest_cluster.icl_value == "0.0021042"

    def test_mass_concentrates_on_dense_icl(self):
        """Figure 3: candidate mass peaks at the most common ICL values."""
        alts = self._alts()
        report = prefix_clusters(alts, ["0.0021042"] * 5 + ["0.0035551"])
        dense = report.densest_cluster
        assert dense.icl_multiplicity == 5

    def test_exact_copy_mass(self):
        steps = [
            _step(["0"], [0.0]),
            _step(["."], [0.0]),
            _step(["002"], [0.0]),
            _step(["\n"], [0.0]),
        ]
        alts = enumerate_value_decodings(steps)
        report = prefix_clusters(alts, ["0.002"])
        assert report.mass_on_exact_copies == pytest.approx(1.0)
        assert report.mean_prefix_overlap == pytest.approx(1.0)

    def test_unrelated_candidates_unclustered(self):
        steps = [_step(["9"], [0.0]), _step(["\n"], [0.0])]
        alts = enumerate_value_decodings(steps)
        report = prefix_clusters(alts, ["0.002"])
        assert all(c.mass == 0.0 for c in report.clusters)

    def test_validation(self):
        alts = self._alts()
        with pytest.raises(AnalysisError):
            prefix_clusters(alts, [])
        with pytest.raises(AnalysisError):
            prefix_clusters(alts, ["0.1"], min_prefix=0)
