"""Tests for the Gaussian-copula transfer substrate (ICS'23 method)."""

import numpy as np
import pytest

from repro.dataset import Syr2kPerformanceModel, generate_dataset
from repro.errors import TuningError
from repro.tuning.base import TuningHistory
from repro.tuning.copula import CopulaTransferTuner, GaussianCopula
from repro.tuning.harness import compare_tuners
from repro.tuning.random_search import RandomSearchTuner
from repro.utils.rng import rng_from


@pytest.fixture(scope="module")
def copula(sm_dataset):
    return GaussianCopula(sm_dataset)


class TestGaussianCopula:
    def test_requires_enough_data(self):
        tiny = generate_dataset("SM", indices=range(5))
        with pytest.raises(TuningError):
            GaussianCopula(tiny)

    def test_objective_correlations_shape(self, copula, space):
        corr = copula.objective_correlations
        assert corr.shape == (len(space.parameters),)
        assert (np.abs(corr) <= 1.0 + 1e-9).all()

    def test_samples_in_range(self, copula, space, rng):
        idx = copula.sample_conditioned(rng, quantile=0.1, n=200)
        assert idx.shape == (200,)
        assert idx.min() >= 0 and idx.max() < space.size

    def test_conditioning_matters(self, sm_dataset, copula):
        """Conditioning on a fast quantile yields faster configurations
        than conditioning on a slow one (in true runtime)."""
        rng_fast = rng_from(1, "fast")
        rng_slow = rng_from(1, "slow")
        fast_idx = copula.sample_conditioned(rng_fast, quantile=0.02, n=300)
        slow_idx = copula.sample_conditioned(rng_slow, quantile=0.98, n=300)
        fast_rt = sm_dataset.runtimes[fast_idx].mean()
        slow_rt = sm_dataset.runtimes[slow_idx].mean()
        assert fast_rt < slow_rt

    def test_fast_conditioning_beats_random(self, sm_dataset, copula, rng):
        idx = copula.sample_conditioned(rng, quantile=0.02, n=300)
        sampled_mean = sm_dataset.runtimes[idx].mean()
        assert sampled_mean < sm_dataset.runtimes.mean()

    def test_invalid_quantile(self, copula, rng):
        with pytest.raises(TuningError):
            copula.sample_conditioned(rng, quantile=0.0)
        with pytest.raises(TuningError):
            copula.sample_conditioned(rng, quantile=1.0)
        with pytest.raises(TuningError):
            copula.sample_conditioned(rng, quantile=0.5, n=0)


class TestCopulaTransferTuner:
    def test_space_mismatch_rejected(self, sm_dataset):
        from repro.dataset.parameters import BooleanParameter
        from repro.dataset.space import ConfigSpace

        other = ConfigSpace((BooleanParameter("z"),))
        with pytest.raises(TuningError):
            CopulaTransferTuner(other, sm_dataset)

    def test_invalid_fraction(self, space, sm_dataset):
        with pytest.raises(TuningError):
            CopulaTransferTuner(space, sm_dataset, source_fraction=0.0)

    def test_never_reproposes(self, space, sm_dataset):
        tuner = CopulaTransferTuner(space, sm_dataset, seed=2)
        history = TuningHistory()
        for _ in range(30):
            idx = tuner.propose(history)
            assert idx not in history.evaluated
            history.record(idx, 1.0)

    def test_transfer_beats_random(self, space, sm_dataset, xl_task):
        """SM -> XL transfer: the copula's proposals reach a better best
        runtime than random search under a small budget."""
        xl_model = Syr2kPerformanceModel(xl_task)
        cmp = compare_tuners(
            [
                RandomSearchTuner(space, seed=3),
                CopulaTransferTuner(space, sm_dataset, seed=3),
            ],
            xl_model,
            budget=20,
            repetitions=3,
        )
        assert cmp.mean_best("copula-transfer") < cmp.mean_best("random")

    def test_deterministic(self, space, sm_dataset):
        a = CopulaTransferTuner(space, sm_dataset, seed=9)
        b = CopulaTransferTuner(space, sm_dataset, seed=9)
        h = TuningHistory()
        assert a.propose(h) == b.propose(h)
