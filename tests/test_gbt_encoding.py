"""Tests for feature/target encoding."""

import numpy as np
import pytest

from repro.gbt.encoding import FeatureEncoder, TargetTransform
from repro.errors import DatasetError


class TestFeatureEncoder:
    def test_width(self, space):
        enc = FeatureEncoder(space)
        # 3 booleans + 3 numeric (value + log2 each) = 3 + 6
        assert enc.n_features == 9
        assert len(enc.feature_names) == 9

    def test_log_columns_present(self, space):
        enc = FeatureEncoder(space)
        assert "log2(outer_loop_tiling_factor)" in enc.feature_names

    def test_values_decoded(self, space):
        enc = FeatureEncoder(space)
        cfg = {
            "first_array_packed": True,
            "second_array_packed": False,
            "interchange_first_two_loops": False,
            "outer_loop_tiling_factor": 32,
            "middle_loop_tiling_factor": 8,
            "inner_loop_tiling_factor": 128,
        }
        idx = space.to_index(cfg)
        row = enc.encode_indices([idx])[0]
        by_name = dict(zip(enc.feature_names, row))
        assert by_name["first_array_packed"] == 1.0
        assert by_name["outer_loop_tiling_factor"] == 32.0
        assert by_name["log2(outer_loop_tiling_factor)"] == 5.0

    def test_encode_dataset(self, sm_dataset):
        enc = FeatureEncoder(sm_dataset.space)
        x = enc.encode_dataset(sm_dataset)
        assert x.shape == (len(sm_dataset), enc.n_features)

    def test_space_mismatch(self, sm_dataset):
        from repro.dataset.parameters import BooleanParameter
        from repro.dataset.space import ConfigSpace

        other = ConfigSpace((BooleanParameter("z"),))
        enc = FeatureEncoder(other)
        with pytest.raises(DatasetError):
            enc.encode_dataset(sm_dataset)


class TestTargetTransform:
    def test_identity_roundtrip(self, rng):
        tt = TargetTransform("identity")
        y = rng.random(10)
        np.testing.assert_allclose(tt.inverse(tt.forward(y)), y)

    def test_log_roundtrip(self, rng):
        tt = TargetTransform("log")
        y = rng.random(10) + 0.1
        np.testing.assert_allclose(tt.inverse(tt.forward(y)), y)

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TargetTransform("log").forward([0.0, 1.0])

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            TargetTransform("sqrt")

    def test_inverse_clips_overflow(self):
        out = TargetTransform("log").inverse([1e6])
        assert np.isfinite(out).all()

    def test_str(self):
        assert str(TargetTransform("log")) == "log"
