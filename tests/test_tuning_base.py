"""Tests for tuner abstractions."""

import numpy as np
import pytest

from repro.errors import TuningError
from repro.tuning.base import EvaluationBudget, Tuner, TuningHistory


class TestTuningHistory:
    def test_record_and_best(self):
        h = TuningHistory()
        h.record(5, 1.0)
        h.record(9, 0.5)
        h.record(2, 0.8)
        assert h.best_runtime == 0.5
        assert h.best_index == 9
        assert len(h) == 3
        assert h.evaluated == {5, 9, 2}

    def test_best_so_far_curve_monotone(self):
        h = TuningHistory()
        for i, rt in enumerate([3.0, 2.0, 2.5, 1.0]):
            h.record(i, rt)
        curve = h.best_so_far_curve()
        np.testing.assert_array_equal(curve, [3.0, 2.0, 2.0, 1.0])
        assert (np.diff(curve) <= 0).all()

    def test_invalid_runtime(self):
        h = TuningHistory()
        with pytest.raises(TuningError):
            h.record(0, 0.0)
        with pytest.raises(TuningError):
            h.record(0, float("nan"))

    def test_empty_best_raises(self):
        with pytest.raises(TuningError):
            _ = TuningHistory().best_runtime

    def test_empty_curve(self):
        assert TuningHistory().best_so_far_curve().size == 0


class TestBudget:
    def test_valid(self):
        assert EvaluationBudget(10).n_evaluations == 10

    def test_invalid(self):
        with pytest.raises(TuningError):
            EvaluationBudget(0)


class TestTunerBase:
    def test_propose_abstract(self, space):
        with pytest.raises(NotImplementedError):
            Tuner(space).propose(TuningHistory())
