"""Tests for value-distribution analysis (Figure 4 machinery)."""

import numpy as np
import pytest

from repro.analysis.decoding import StepCandidates, enumerate_value_decodings
from repro.analysis.distributions import (
    bimodality_split,
    cross_seed_similarity,
    summarize_candidates,
)
from repro.errors import AnalysisError


def _step(tokens, logits, chosen=0):
    return StepCandidates(tuple(tokens), np.asarray(logits, float), chosen)


class TestSummarize:
    def test_moments(self):
        s = summarize_candidates([1.0, 2.0, 3.0], [0.25, 0.5, 0.25])
        assert s.mean == pytest.approx(2.0)
        assert s.median == 2.0
        assert s.mode == 2.0
        assert s.minimum == 1.0 and s.maximum == 3.0

    def test_weighted_median(self):
        s = summarize_candidates([1.0, 10.0], [0.9, 0.1])
        assert s.median == 1.0

    def test_contains(self):
        s = summarize_candidates([1.0, 3.0], [0.5, 0.5])
        assert s.contains(2.0) and not s.contains(5.0)

    def test_invalid_probs(self):
        with pytest.raises(ValueError):
            summarize_candidates([1.0], [0.5])


class TestBimodality:
    def _bimodal_alts(self):
        steps = [
            _step(["1", "2"], [0.0, 0.0]),
            _step(["."], [0.0]),
            _step(["7"], [0.0]),
            _step(["\n"], [0.0]),
        ]
        return enumerate_value_decodings(steps)

    def test_detects_two_prefix_modes(self):
        """Figure 4: 1.7 vs 2.7 string-prefix modes."""
        alts = self._bimodal_alts()
        modes, multimodal = bimodality_split(alts, prefix_len=3)
        assert multimodal
        prefixes = {m.prefix for m in modes}
        assert prefixes == {"1.7", "2.7"}

    def test_masses_sum_to_one(self):
        alts = self._bimodal_alts()
        modes, _ = bimodality_split(alts)
        assert sum(m.mass for m in modes) == pytest.approx(1.0)

    def test_unimodal(self):
        steps = [_step(["5"], [0.0]), _step(["\n"], [0.0])]
        alts = enumerate_value_decodings(steps)
        modes, multimodal = bimodality_split(alts)
        assert not multimodal and len(modes) == 1

    def test_invalid_args(self):
        alts = self._bimodal_alts()
        with pytest.raises(AnalysisError):
            bimodality_split(alts, prefix_len=0)


class TestCrossSeed:
    def test_identical_support(self):
        a = [_step(["0", "1"], [1.0, 0.0])]
        b = [_step(["0", "1"], [1.05, -0.02])]
        sim = cross_seed_similarity(a, b)
        assert sim.identical_support
        assert sim.mean_jaccard == 1.0
        assert 0 < sim.mean_abs_logit_delta < 0.1

    def test_partial_overlap(self):
        a = [_step(["0", "1"], [1.0, 0.0])]
        b = [_step(["0", "2"], [1.0, 0.0])]
        sim = cross_seed_similarity(a, b)
        assert not sim.identical_support
        assert sim.mean_jaccard == pytest.approx(1 / 3)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            cross_seed_similarity([], [])

    def test_real_lm_seeds_nearly_identical(self, engine, tokenizer):
        """The surrogate LM reproduces the paper's cross-seed behaviour."""
        text = (
            "Performance: 0.0022155\n\nPerformance: 0.0031921\n\n"
            "Performance:"
        )
        ids = np.asarray(tokenizer.encode(text))
        t1 = engine.generate(ids, seed=1).value_region(tokenizer.vocab)
        t2 = engine.generate(ids, seed=2).value_region(tokenizer.vocab)
        if t1 and t2:  # both generations entered the value
            sim = cross_seed_similarity(t1[:1], t2[:1])
            assert sim.mean_jaccard > 0.8
