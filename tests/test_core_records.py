"""Tests for result aggregation."""

import numpy as np
import pytest

from repro.core.grid import ExperimentSpec
from repro.core.records import build_report, cell_metrics, group_probes
from repro.core.runner import ProbeResult
from repro.errors import AnalysisError


def _probe(
    size="SM",
    selection="random",
    n_icl=5,
    set_id=0,
    seed=1,
    truth=1.0,
    predicted=1.1,
    copy=False,
):
    spec = ExperimentSpec(size, selection, n_icl, set_id, seed, n_queries=1)
    return ProbeResult(
        spec=spec,
        query_index=0,
        truth=truth,
        predicted=predicted,
        predicted_text="" if predicted is None else str(predicted),
        generated_text="",
        exact_copy=copy,
        icl_value_strings=[],
        value_steps=[],
        n_prompt_tokens=100,
    )


class TestGrouping:
    def test_experiment_grouping_pools_sets(self):
        probes = [_probe(set_id=0), _probe(set_id=1)]
        groups = group_probes(probes, by="experiment")
        assert len(groups) == 1

    def test_cell_grouping_separates_sets(self):
        probes = [_probe(set_id=0), _probe(set_id=1)]
        groups = group_probes(probes, by="cell")
        assert len(groups) == 2

    def test_unknown_grouping(self):
        with pytest.raises(AnalysisError):
            group_probes([_probe()], by="nope")


class TestCellMetrics:
    def test_scores_parsed_probes(self):
        probes = [
            _probe(truth=1.0, predicted=1.0),
            _probe(truth=2.0, predicted=2.2),
        ]
        cm = cell_metrics(("k",), probes)
        assert cm.metrics is not None
        assert cm.n_parsed == 2

    def test_unparsed_excluded(self):
        probes = [
            _probe(truth=1.0, predicted=None),
            _probe(truth=2.0, predicted=2.0),
        ]
        cm = cell_metrics(("k",), probes)
        assert cm.metrics is None  # only one parsed -> cannot score
        assert cm.parse_rate == 0.5

    def test_copies_counted(self):
        probes = [_probe(copy=True), _probe(copy=False)]
        cm = cell_metrics(("k",), probes)
        assert cm.n_copies == 1

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            cell_metrics(("k",), [])


class TestBuildReport:
    def _probes(self):
        out = []
        for n_icl in (1, 5):
            for seed in (1, 2):
                for q, (t, p) in enumerate(
                    [(1.0, 1.2), (2.0, 1.8), (3.0, 3.3), (4.0, 4.4)]
                ):
                    out.append(
                        _probe(
                            n_icl=n_icl,
                            seed=seed,
                            truth=t,
                            predicted=p,
                            copy=(q == 0),
                        )
                    )
        return out

    def test_report_statistics(self):
        report = build_report(self._probes())
        assert len(report.cells) == 4  # 2 icl x 2 seeds
        assert report.copy_rate == pytest.approx(0.25)
        assert report.parse_rate == 1.0
        assert report.best_r2 <= 1.0
        assert -1 <= report.frac_nonnegative_r2 <= 1

    def test_per_icl_mare(self):
        report = build_report(self._probes())
        assert set(report.per_icl_mare) == {1, 5}

    def test_summary_lines(self):
        report = build_report(self._probes())
        lines = report.summary_lines()
        assert any("best R2" in ln for ln in lines)
        assert any("copy rate" in ln for ln in lines)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            build_report([])

    def test_all_unparsed_rejected(self):
        probes = [_probe(predicted=None), _probe(predicted=None)]
        with pytest.raises(AnalysisError):
            build_report(probes)
