"""Tests for the surrogate-LM scorers."""

import numpy as np
import pytest

from repro.llm.scorers import (
    FormatScorer,
    InductionScorer,
    PriorScorer,
    RecencyUnigramScorer,
    SparseScores,
)
from repro.llm.tokenizer import Tokenizer


@pytest.fixture(scope="module")
def tok():
    return Tokenizer()


class TestSparseScores:
    def test_accumulate_sums_overlap(self):
        a = SparseScores(np.array([1, 2]), np.array([1.0, 2.0]))
        b = SparseScores(np.array([2, 3]), np.array([5.0, 7.0]))
        merged = SparseScores.accumulate([a, b])
        by_id = dict(zip(merged.ids.tolist(), merged.scores.tolist()))
        assert by_id == {1: 1.0, 2: 7.0, 3: 7.0}

    def test_accumulate_empty(self):
        assert SparseScores.accumulate([]).ids.size == 0
        assert SparseScores.accumulate([SparseScores.empty()]).ids.size == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            SparseScores(np.array([1]), np.array([1.0, 2.0]))


class TestInductionScorer:
    def test_single_continuation_dominates(self):
        """Context 'A B A B A' -> suffix ...'A' was always followed by 'B'."""
        ctx = np.array([10, 20, 10, 20, 10])
        scores = InductionScorer().score(ctx)
        by_id = dict(zip(scores.ids.tolist(), scores.scores.tolist()))
        assert max(by_id, key=by_id.get) == 20

    def test_longer_match_wins(self):
        """'X Y Z ... Q Y Z' — the length-2 match (-> after 'Y Z') should
        out-vote length-1 matches of 'Z' elsewhere."""
        # tokens: 1 2 3 | 9 5 3 7 | 1 2 3 -> suffix [2,3]; after [2,3] came 4
        ctx = np.array([1, 2, 3, 4, 9, 5, 3, 7, 1, 2, 3])
        scores = InductionScorer().score(ctx)
        by_id = dict(zip(scores.ids.tolist(), scores.scores.tolist()))
        assert by_id[4] > by_id[7]  # 7 only follows a length-1 '3' match

    def test_no_match_empty(self):
        scores = InductionScorer().score(np.array([1, 2, 3]))
        # suffix token 3 never occurred before -> only weaker L=... nothing
        assert scores.ids.size == 0

    def test_recency_bias(self):
        """Matches near the end vote more strongly."""
        far = [5, 77] + [9] * 50
        near = [9] * 50 + [5, 88]
        ctx = np.array(far + near + [5])
        scorer = InductionScorer(recency_halflife=30.0)
        scores = scorer.score(ctx)
        by_id = dict(zip(scores.ids.tolist(), scores.scores.tolist()))
        assert by_id[88] > by_id[77]

    def test_offset_shift(self):
        ctx = np.array([1, 2, 1, 2, 1])
        plain = InductionScorer().score(ctx)
        shifted = InductionScorer().score(ctx, offset_shift=-3.0)
        np.testing.assert_allclose(shifted.scores, plain.scores - 3.0)

    def test_short_context_empty(self):
        assert InductionScorer().score(np.array([1])).ids.size == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            InductionScorer(max_ngram=0)
        with pytest.raises(ValueError):
            InductionScorer(match_base=0.5)


class TestRecencyUnigram:
    def test_frequency_order(self):
        ctx = np.array([7, 7, 7, 8])
        scores = RecencyUnigramScorer(halflife=1e9).score(ctx)
        by_id = dict(zip(scores.ids.tolist(), scores.scores.tolist()))
        assert by_id[7] > by_id[8]

    def test_recency_tilts(self):
        """With a short halflife, the most recent token beats an older,
        slightly more frequent one."""
        ctx = np.array([7, 7] + [0] * 30 + [8])
        scores = RecencyUnigramScorer(halflife=3.0).score(ctx)
        by_id = dict(zip(scores.ids.tolist(), scores.scores.tolist()))
        assert by_id[8] > by_id[7]

    def test_empty(self):
        assert RecencyUnigramScorer().score(np.array([])).ids.size == 0

    def test_invalid_halflife(self):
        with pytest.raises(ValueError):
            RecencyUnigramScorer(halflife=0)


class TestFormatScorer:
    def _analysis(self, tok, text):
        fs = FormatScorer(tok.vocab)
        return fs, fs.analyze_prompt(np.asarray(tok.encode(text)))

    def test_analyze_finds_start_votes(self, tok):
        fs, analysis = self._analysis(
            tok, "Performance: 0.0022155\nPerformance: 0.0031921\n"
        )
        zero = tok.vocab.id_of("0")
        assert set(analysis.start_votes) == {zero}
        assert analysis.expected_decimals == 7

    def test_analyze_collects_fraction_prefixes(self, tok):
        fs, analysis = self._analysis(
            tok, "Performance: 0.0022155\nPerformance: 0.0031921\n"
        )
        assert sorted(analysis.fraction_prefixes) == ["002", "003"]

    def test_analyze_xl_decimals(self, tok):
        fs, analysis = self._analysis(tok, "Performance: 2.2767\n")
        assert analysis.expected_decimals == 4

    def test_analyze_no_cue(self, tok):
        fs, analysis = self._analysis(tok, "no values here at all")
        assert analysis.start_votes == {}
        assert analysis.expected_decimals is None

    def test_value_state_phases(self, tok):
        fs = FormatScorer(tok.vocab)
        assert fs.value_state([]).phase == "preamble"
        assert fs.value_state(["Performance", ":"]).phase == "preamble"
        assert fs.value_state(["0"]).phase == "value"
        s = fs.value_state(["0", ".", "002"])
        assert s.phase == "value" and s.seen_dot and s.digits_after_dot == 3
        assert fs.value_state(["0", ".", "002", "\n"]).phase == "done"

    def test_dot_boost_only_after_integer(self, tok):
        fs, analysis = self._analysis(tok, "Performance: 0.0022155\n")
        scores = fs.score(["0"], analysis)
        by_id = dict(zip(scores.ids.tolist(), scores.scores.tolist()))
        assert by_id[tok.vocab.dot_id] == pytest.approx(fs.dot_boost)

    def test_termination_after_expected_decimals(self, tok):
        fs, analysis = self._analysis(tok, "Performance: 0.0022155\n")
        done = fs.score(["0", ".", "002", "215", "5"], analysis)
        by_id = dict(zip(done.ids.tolist(), done.scores.tolist()))
        assert by_id[tok.vocab.newline_id] > 0

    def test_premature_stop_penalized(self, tok):
        fs, analysis = self._analysis(tok, "Performance: 0.0022155\n")
        early = fs.score(["0", ".", "002"], analysis)
        by_id = dict(zip(early.ids.tolist(), early.scores.tolist()))
        assert by_id[tok.vocab.newline_id] < 0

    def test_digit_noise_restricted_to_remaining(self, tok):
        fs, analysis = self._analysis(tok, "Performance: 2.2767\n")
        # after "2", ".", "276": one decimal remains -> only 1-digit tokens
        noise = fs.digit_noise(["2", ".", "276"], analysis)
        strings = [tok.vocab.string_of(int(i)) for i in noise.ids]
        assert all(len(s) == 1 for s in strings)
        assert noise.scores.sum() == pytest.approx(1.0)

    def test_digit_noise_empty_when_complete(self, tok):
        fs, analysis = self._analysis(tok, "Performance: 2.2767\n")
        assert fs.digit_noise(["2", ".", "276", "7"], analysis).ids.size == 0

    def test_digit_noise_prefix_affinity(self, tok):
        """First-chunk noise concentrates on demonstrated prefixes."""
        fs, analysis = self._analysis(
            tok, "Performance: 0.0022155\nPerformance: 0.0021042\n"
        )
        noise = fs.digit_noise(["0", "."], analysis)
        by_str = {
            tok.vocab.string_of(int(i)): float(s)
            for i, s in zip(noise.ids, noise.scores)
        }
        affine_mass = sum(v for k, v in by_str.items() if k.startswith("00"))
        loose_mass = sum(v for k, v in by_str.items() if k.startswith("0"))
        assert affine_mass > 0.7
        assert loose_mass > 0.85

    def test_done_state_boosts_eot(self, tok):
        fs = FormatScorer(tok.vocab)
        scores = fs.score(["0", ".", "1", " "], None)
        assert scores.ids.tolist() == [tok.vocab.specials.eot]


class TestPriorScorer:
    def test_magnitude_sm_prefers_zero(self, tok):
        ps = PriorScorer(tok.vocab)
        scores = ps.first_token_magnitude("SM")
        assert scores.ids.tolist() == [tok.vocab.id_of("0")]

    def test_magnitude_xl_prefers_nonzero(self, tok):
        ps = PriorScorer(tok.vocab)
        scores = ps.first_token_magnitude("XL")
        strings = {tok.vocab.string_of(int(i)) for i in scores.ids}
        assert strings == {str(d) for d in range(1, 10)}

    def test_unknown_size_empty(self, tok):
        assert PriorScorer(tok.vocab).first_token_magnitude(None).ids.size == 0

    def test_bias_deterministic(self, tok):
        a = PriorScorer(tok.vocab, prior_seed=3)
        b = PriorScorer(tok.vocab, prior_seed=3)
        ids = np.array([1, 2, 3])
        np.testing.assert_array_equal(a.bias_for(ids), b.bias_for(ids))

    def test_bias_seed_sensitive(self, tok):
        a = PriorScorer(tok.vocab, prior_seed=3)
        b = PriorScorer(tok.vocab, prior_seed=4)
        ids = np.array([1, 2, 3])
        assert not np.array_equal(a.bias_for(ids), b.bias_for(ids))
