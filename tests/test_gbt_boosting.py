"""Tests for the gradient-boosting ensemble."""

import numpy as np
import pytest

from repro.errors import ModelNotFittedError
from repro.gbt.boosting import BoostingParams, GradientBoostingRegressor


@pytest.fixture()
def toy_regression(rng):
    x = rng.random((400, 5))
    y = 3 * x[:, 0] + np.sin(4 * x[:, 1]) + 0.1 * rng.normal(size=400)
    return x[:300], y[:300], x[300:], y[300:]


class TestParams:
    def test_invalid(self):
        with pytest.raises(ValueError):
            BoostingParams(n_estimators=0)
        with pytest.raises(ValueError):
            BoostingParams(learning_rate=0)
        with pytest.raises(ValueError):
            BoostingParams(subsample=0)
        with pytest.raises(ValueError):
            BoostingParams(colsample=1.5)

    def test_tree_params_derived(self):
        p = BoostingParams(max_depth=4, min_samples_leaf=7)
        tp = p.tree_params()
        assert tp.max_depth == 4 and tp.min_samples_leaf == 7


class TestFitting:
    def test_improves_over_mean(self, toy_regression):
        xtr, ytr, xte, yte = toy_regression
        model = GradientBoostingRegressor(
            BoostingParams(n_estimators=80, learning_rate=0.2, max_depth=3)
        ).fit(xtr, ytr)
        pred = model.predict(xte)
        mse_model = np.mean((pred - yte) ** 2)
        mse_mean = np.mean((ytr.mean() - yte) ** 2)
        assert mse_model < 0.2 * mse_mean

    def test_more_trees_fit_train_better(self, toy_regression):
        xtr, ytr, _, _ = toy_regression
        small = GradientBoostingRegressor(
            BoostingParams(n_estimators=5, learning_rate=0.1)
        ).fit(xtr, ytr)
        big = GradientBoostingRegressor(
            BoostingParams(n_estimators=100, learning_rate=0.1)
        ).fit(xtr, ytr)
        assert np.mean((big.predict(xtr) - ytr) ** 2) < np.mean(
            (small.predict(xtr) - ytr) ** 2
        )

    def test_base_score_is_mean(self, toy_regression):
        xtr, ytr, _, _ = toy_regression
        model = GradientBoostingRegressor(BoostingParams(n_estimators=1)).fit(
            xtr, ytr
        )
        assert model.base_score == pytest.approx(ytr.mean())

    def test_deterministic_given_seed(self, toy_regression):
        xtr, ytr, xte, _ = toy_regression
        p = BoostingParams(n_estimators=20, subsample=0.7, seed=3)
        a = GradientBoostingRegressor(p).fit(xtr, ytr).predict(xte)
        b = GradientBoostingRegressor(p).fit(xtr, ytr).predict(xte)
        np.testing.assert_array_equal(a, b)

    def test_subsample_and_colsample_run(self, toy_regression):
        xtr, ytr, xte, yte = toy_regression
        model = GradientBoostingRegressor(
            BoostingParams(
                n_estimators=30, subsample=0.5, colsample=0.6, seed=1
            )
        ).fit(xtr, ytr)
        assert np.isfinite(model.predict(xte)).all()

    def test_single_row(self):
        model = GradientBoostingRegressor(
            BoostingParams(n_estimators=2)
        ).fit(np.array([[1.0]]), np.array([5.0]))
        assert model.predict(np.array([[1.0]]))[0] == pytest.approx(5.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor().fit(np.zeros((3, 2)), np.zeros(4))


class TestEarlyStopping:
    def test_stops_early(self, toy_regression):
        xtr, ytr, xte, yte = toy_regression
        model = GradientBoostingRegressor(
            BoostingParams(
                n_estimators=500,
                learning_rate=0.5,
                early_stopping_rounds=5,
            )
        ).fit(xtr, ytr, eval_set=(xte, yte))
        assert model.n_trees < 500
        assert len(model.validation_curve) == model.n_trees

    def test_best_iteration_used_in_predict(self, toy_regression):
        xtr, ytr, xte, yte = toy_regression
        model = GradientBoostingRegressor(
            BoostingParams(
                n_estimators=300, learning_rate=0.6, early_stopping_rounds=20
            )
        ).fit(xtr, ytr, eval_set=(xte, yte))
        best = model.predict(xte, use_best_iteration=True)
        full = model.predict(xte, use_best_iteration=False)
        mse_best = np.mean((best - yte) ** 2)
        mse_full = np.mean((full - yte) ** 2)
        assert mse_best <= mse_full + 1e-12


class TestIntrospection:
    def test_unfitted_raises(self):
        with pytest.raises(ModelNotFittedError):
            GradientBoostingRegressor().predict(np.zeros((1, 1)))

    def test_feature_importance_sums_to_one(self, toy_regression):
        xtr, ytr, _, _ = toy_regression
        model = GradientBoostingRegressor(
            BoostingParams(n_estimators=20)
        ).fit(xtr, ytr)
        imp = model.feature_importance()
        assert imp.shape == (5,)
        assert imp.sum() == pytest.approx(1.0)

    def test_informative_feature_ranks_high(self, rng):
        x = rng.random((500, 4))
        y = 10 * x[:, 2] + 0.01 * rng.normal(size=500)
        model = GradientBoostingRegressor(
            BoostingParams(n_estimators=30, max_depth=3)
        ).fit(x, y)
        imp = model.feature_importance()
        assert imp[2] == imp.max()
