"""Tests for the serving layer's LRU cache and prompt fingerprinting."""

import threading

import numpy as np
import pytest

from repro.serve.cache import MISS, LRUCache, prompt_fingerprint


class TestPromptFingerprint:
    def test_deterministic(self):
        ids = np.arange(50, dtype=np.int64)
        assert prompt_fingerprint(ids) == prompt_fingerprint(ids.copy())

    def test_distinguishes_content(self):
        a = np.asarray([1, 2, 3], dtype=np.int64)
        b = np.asarray([1, 2, 4], dtype=np.int64)
        assert prompt_fingerprint(a) != prompt_fingerprint(b)

    def test_distinguishes_order(self):
        a = np.asarray([1, 2, 3], dtype=np.int64)
        b = np.asarray([3, 2, 1], dtype=np.int64)
        assert prompt_fingerprint(a) != prompt_fingerprint(b)

    def test_accepts_lists(self):
        assert prompt_fingerprint([1, 2, 3]) == prompt_fingerprint(
            np.asarray([1, 2, 3], dtype=np.int64)
        )


class TestLRUCache:
    def test_miss_then_hit(self):
        c = LRUCache(4)
        assert c.get("k") is MISS
        c.put("k", 42)
        assert c.get("k") == 42
        assert c.hits == 1 and c.misses == 1
        assert c.hit_rate == 0.5

    def test_capacity_evicts_least_recent(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")           # refresh "a": "b" is now least recent
        c.put("c", 3)
        assert "a" in c and "c" in c and "b" not in c

    def test_put_refreshes_recency(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 10)       # rewrite refreshes
        c.put("c", 3)
        assert c.get("a") == 10
        assert c.get("b") is MISS

    def test_cached_none_is_not_a_miss(self):
        c = LRUCache(2)
        c.put("k", None)
        assert c.get("k") is None
        assert c.hits == 1

    def test_len_and_clear(self):
        c = LRUCache(8)
        for i in range(5):
            c.put(i, i)
        assert len(c) == 5
        c.clear()
        assert len(c) == 0
        # Counters survive a clear (they describe lifetime traffic).
        c.get(0)
        assert c.misses == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_hit_rate_empty(self):
        assert LRUCache(1).hit_rate == 0.0

    def test_thread_safety_smoke(self):
        c = LRUCache(64)
        errors = []

        def worker(base):
            try:
                for i in range(500):
                    c.put((base, i % 80), i)
                    c.get((base, (i * 7) % 80))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(c) <= 64
