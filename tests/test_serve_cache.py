"""Tests for the serving layer's LRU cache and prompt fingerprinting."""

import threading

import numpy as np
import pytest

from repro.serve.cache import MISS, LRUCache, prompt_fingerprint


class TestPromptFingerprint:
    def test_deterministic(self):
        ids = np.arange(50, dtype=np.int64)
        assert prompt_fingerprint(ids) == prompt_fingerprint(ids.copy())

    def test_distinguishes_content(self):
        a = np.asarray([1, 2, 3], dtype=np.int64)
        b = np.asarray([1, 2, 4], dtype=np.int64)
        assert prompt_fingerprint(a) != prompt_fingerprint(b)

    def test_distinguishes_order(self):
        a = np.asarray([1, 2, 3], dtype=np.int64)
        b = np.asarray([3, 2, 1], dtype=np.int64)
        assert prompt_fingerprint(a) != prompt_fingerprint(b)

    def test_accepts_lists(self):
        assert prompt_fingerprint([1, 2, 3]) == prompt_fingerprint(
            np.asarray([1, 2, 3], dtype=np.int64)
        )


class TestLRUCache:
    def test_miss_then_hit(self):
        c = LRUCache(4)
        assert c.get("k") is MISS
        c.put("k", 42)
        assert c.get("k") == 42
        assert c.hits == 1 and c.misses == 1
        assert c.hit_rate == 0.5

    def test_capacity_evicts_least_recent(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")           # refresh "a": "b" is now least recent
        c.put("c", 3)
        assert "a" in c and "c" in c and "b" not in c

    def test_put_refreshes_recency(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 10)       # rewrite refreshes
        c.put("c", 3)
        assert c.get("a") == 10
        assert c.get("b") is MISS

    def test_cached_none_is_not_a_miss(self):
        c = LRUCache(2)
        c.put("k", None)
        assert c.get("k") is None
        assert c.hits == 1

    def test_len_and_clear(self):
        c = LRUCache(8)
        for i in range(5):
            c.put(i, i)
        assert len(c) == 5
        c.clear()
        assert len(c) == 0
        # Counters survive a clear (they describe lifetime traffic).
        c.get(0)
        assert c.misses == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_hit_rate_empty(self):
        assert LRUCache(1).hit_rate == 0.0

    def test_peek_has_no_side_effects(self):
        c = LRUCache(2)
        assert c.peek("k") is MISS
        c.put("a", 1)
        c.put("b", 2)
        assert c.peek("a") == 1
        # peek recorded nothing and did not refresh recency: "a" is still
        # the least recent entry and gets evicted next.
        assert c.hits == 0 and c.misses == 0
        c.put("c", 3)
        assert c.peek("a") is MISS

    def test_snapshot_matches_properties(self):
        c = LRUCache(4)
        c.put("a", 1)
        c.get("a")
        c.get("b")
        assert c.snapshot() == (1, 1, 1)
        assert c.snapshot() == (c.hits, c.misses, len(c))

    def test_snapshot_consistent_under_contention(self):
        """``snapshot()`` must be one locked read: hits + misses can
        never exceed the number of reads issued so far, and together
        with size must never tear (separate property reads around a
        concurrent lookup can report a hit rate above 1.0)."""
        c = LRUCache(16)
        stop = threading.Event()
        reads_issued = [0]
        errors = []

        def mutate():
            i = 0
            while not stop.is_set():
                c.put(i % 24, i)
                reads_issued[0] += 1
                c.get((i * 7) % 24)
                i += 1

        def observe():
            try:
                while not stop.is_set():
                    hits, misses, size = c.snapshot()
                    if hits < 0 or misses < 0:
                        raise AssertionError("negative counter")
                    if not 0 <= size <= 16:
                        raise AssertionError(f"size {size} out of bounds")
                    # reads_issued is sampled *after* the snapshot, so it
                    # is always >= the reads the snapshot could have seen.
                    if hits + misses > reads_issued[0]:
                        raise AssertionError(
                            f"torn snapshot: {hits}+{misses} reads "
                            f"recorded, only {reads_issued[0]} issued"
                        )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        writer = threading.Thread(target=mutate)
        readers = [threading.Thread(target=observe) for _ in range(2)]
        writer.start()
        for r in readers:
            r.start()
        writer.join(0.5)
        stop.set()
        writer.join()
        for r in readers:
            r.join()
        assert not errors

    def test_thread_safety_smoke(self):
        c = LRUCache(64)
        errors = []

        def worker(base):
            try:
                for i in range(500):
                    c.put((base, i % 80), i)
                    c.get((base, (i * 7) % 80))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(c) <= 64

    def test_thread_safety_hammer(self):
        """Concurrency audit: invariants under a seeded multi-thread storm.

        Every value stored is a pure function of its key, so any read
        returning something else is a lost/torn update.  Hit/miss
        counters must add up to exactly the number of reads issued, and
        the size bound must hold at the end — a racy eviction loop is
        what would break it.
        """
        import numpy as np

        capacity, n_threads, n_ops = 32, 8, 3000
        c = LRUCache(capacity)
        errors = []
        gets_done = [0] * n_threads
        start = threading.Barrier(n_threads)

        def value_of(key):
            return key * 31 + 7

        def worker(t):
            rng = np.random.default_rng(1000 + t)
            keys = rng.integers(0, 64, size=n_ops)
            ops = rng.integers(0, 4, size=n_ops)
            try:
                start.wait()
                for key, op in zip(keys, ops):
                    key = int(key)
                    if op == 0:
                        c.put(key, value_of(key))
                    elif op == 3:
                        got = c.peek(key)
                        if got is not MISS and got != value_of(key):
                            raise AssertionError(
                                f"lost update: peek({key}) -> {got}"
                            )
                    else:
                        gets_done[t] += 1
                        got = c.get(key)
                        if got is not MISS and got != value_of(key):
                            raise AssertionError(
                                f"lost update: get({key}) -> {got}"
                            )
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert 0 < len(c) <= capacity
        # No lost counter updates: every get recorded exactly once.
        assert c.hits + c.misses == sum(gets_done)
