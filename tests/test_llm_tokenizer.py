"""Tests for the tokenizer (digit chunking, round-trip, fallbacks)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TokenizationError
from repro.llm.tokenizer import Tokenizer, chunk_digits


class TestChunkDigits:
    def test_left_to_right_groups_of_three(self):
        assert chunk_digits("1234567") == ["123", "456", "7"]
        assert chunk_digits("0022155") == ["002", "215", "5"]

    def test_short_runs(self):
        assert chunk_digits("7") == ["7"]
        assert chunk_digits("42") == ["42"]
        assert chunk_digits("123") == ["123"]

    def test_non_digits_rejected(self):
        with pytest.raises(TokenizationError):
            chunk_digits("12a")


class TestValueTokenization:
    def test_paper_example_shape(self, tokenizer):
        """0.0022155 must tokenize as 0 | . | 002 | 215 | 5 (Section IV-B:
        every value string is at least three tokens with '.' second)."""
        strs = tokenizer.token_strings(tokenizer.encode("0.0022155"))
        assert strs == ["0", ".", "002", "215", "5"]

    def test_xl_value_shape(self, tokenizer):
        strs = tokenizer.token_strings(tokenizer.encode("2.2767"))
        assert strs == ["2", ".", "276", "7"]

    def test_encode_value_validates(self, tokenizer):
        assert tokenizer.encode_value("1.5")
        with pytest.raises(TokenizationError):
            tokenizer.encode_value("1.5e-3")
        with pytest.raises(TokenizationError):
            tokenizer.encode_value("-1.5")


class TestRoundTrip:
    CASES = [
        "Performance: 0.0022155\n",
        "Hyperparameter configuration: size is SM, first_array_packed is True",
        "for i=0 to N in tiles of size outer_loop_tiling_factor",
        "<|begin_of_text|><|start_header_id|>system<|end_header_id|>\n\nHi<|eot_id|>",
        "weird ünïcode ☃ text",
        "tabs\tand\rcarriage",
        "",
        "  leading and trailing  ",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_roundtrip(self, tokenizer, text):
        assert tokenizer.decode(tokenizer.encode(text)) == text

    @given(st.text(max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, text):
        tok = Tokenizer()
        assert tok.decode(tok.encode(text)) == text

    @given(
        st.floats(
            min_value=1e-6, max_value=1e4, allow_nan=False, allow_infinity=False
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_value_roundtrip_property(self, value):
        tok = Tokenizer()
        text = f"{value:.7f}"
        assert tok.decode(tok.encode(text)) == text


class TestSegmentation:
    def test_words_single_tokens(self, tokenizer):
        strs = tokenizer.token_strings(tokenizer.encode("the configuration"))
        assert strs == ["the", " configuration"]

    def test_special_tokens_atomic(self, tokenizer):
        ids = tokenizer.encode("<|eot_id|>")
        assert ids == [tokenizer.vocab.specials.eot]

    def test_unknown_word_falls_back_to_chars(self, tokenizer):
        strs = tokenizer.token_strings(tokenizer.encode("qzxv"))
        assert "".join(strs) == "qzxv"
        assert all(len(s) == 1 for s in strs)

    def test_number_after_space(self, tokenizer):
        strs = tokenizer.token_strings(tokenizer.encode("is 80"))
        assert strs == ["is", " ", "80"]

    def test_double_newline_single_token(self, tokenizer):
        assert tokenizer.token_strings(tokenizer.encode("\n\n")) == ["\n\n"]

    def test_unicode_via_bytes(self, tokenizer):
        ids = tokenizer.encode("é")
        assert all(tokenizer.vocab.is_byte(i) for i in ids)
        assert tokenizer.decode(ids) == "é"
