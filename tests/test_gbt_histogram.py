"""Tests for histogram pre-binning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gbt.histogram import bin_matrix


class TestBinMatrix:
    def test_few_uniques_lossless(self):
        x = np.array([[1.0], [2.0], [1.0], [3.0]])
        binned = bin_matrix(x, max_bins=8)
        # Distinct values map to distinct bins, equal values share bins.
        codes = binned.codes[:, 0]
        assert codes[0] == codes[2]
        assert len({codes[0], codes[1], codes[3]}) == 3

    def test_codes_ordered_with_values(self):
        x = np.array([[5.0], [1.0], [3.0]])
        codes = bin_matrix(x).codes[:, 0]
        assert codes[1] < codes[2] < codes[0]

    def test_max_bins_respected(self, rng):
        x = rng.random((500, 2))
        binned = bin_matrix(x, max_bins=16)
        assert (binned.n_bins <= 16).all()
        assert binned.codes.max() < 16

    def test_bin_new_consistent(self, rng):
        x = rng.random((200, 3))
        binned = bin_matrix(x, max_bins=32)
        again = binned.bin_new(x)
        np.testing.assert_array_equal(again, binned.codes)

    def test_bin_new_shape_check(self, rng):
        binned = bin_matrix(rng.random((10, 3)))
        with pytest.raises(ValueError):
            binned.bin_new(rng.random((5, 2)))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            bin_matrix(np.zeros(5))

    def test_bad_max_bins(self):
        with pytest.raises(ValueError):
            bin_matrix(np.zeros((3, 1)), max_bins=1)

    def test_constant_column(self):
        binned = bin_matrix(np.ones((10, 1)))
        assert binned.n_bins[0] == 1
        assert (binned.codes == 0).all()

    @given(st.integers(min_value=2, max_value=40))
    @settings(max_examples=15, deadline=None)
    def test_split_semantics(self, n):
        """Splitting at bin b must equal the raw test x <= thresholds[b]."""
        rng = np.random.default_rng(n)
        x = rng.normal(size=(n, 1))
        binned = bin_matrix(x, max_bins=8)
        thr = binned.thresholds[0]
        for b in range(len(thr)):
            left_by_code = binned.codes[:, 0] <= b
            left_by_value = x[:, 0] <= thr[b]
            np.testing.assert_array_equal(left_by_code, left_by_value)
