"""Crash-resumable grid tests: checkpoint write, resume, kill-and-resume.

The contract under test (ISSUE acceptance): a ``run_grid`` process killed
mid-run resumes from its checkpoint and produces a probe set identical to
an uninterrupted run — same probes, no duplicates — including when the
"kill" is a hard ``os._exit`` in a child process (no finalizers, no
atexit, the closest a test gets to SIGKILL).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.core import quick_grid, run_grid
from repro.core.storage import load_checkpoint, load_probes_jsonl
from repro.errors import ExperimentError, InjectedFaultError
from repro.faults import FaultPlan


def small_grid():
    return quick_grid(
        sizes=("SM",), icl_counts=(1, 2, 3), n_sets=1, seeds=(1,),
        selections=("random",), n_queries=1,
    )


def probe_key(probe):
    """Identity of a probe for set comparisons (spec cell + query + output)."""
    return (
        probe.spec.cell_key,
        probe.query_index,
        probe.predicted,
        probe.generated_text,
    )


def crashing_plan(specs, crash_index):
    """A FaultPlan that faults exactly ``specs[crash_index]`` and no other.

    Searched rather than hardcoded so the test never silently stops
    crashing when the grid helper changes its specs.
    """
    for seed in range(500):
        plan = FaultPlan(seed=seed, cell_error_rate=0.4)
        hits = [plan.cell_fault(spec.cell_key) for spec in specs]
        if hits == [i == crash_index for i in range(len(specs))]:
            return plan
    raise AssertionError("no suitable crash plan seed in range")


@pytest.fixture(scope="module")
def baseline():
    """The uninterrupted run every resume result must reproduce."""
    return run_grid(small_grid(), workers=1)


class TestCheckpointWriting:
    def test_checkpoint_matches_returned_probes(self, tmp_path, baseline):
        path = tmp_path / "grid.jsonl"
        probes = run_grid(small_grid(), workers=1, checkpoint=path)
        assert [probe_key(p) for p in probes] == [
            probe_key(p) for p in baseline
        ]
        on_disk = load_probes_jsonl(path)
        assert [probe_key(p) for p in on_disk] == [
            probe_key(p) for p in probes
        ]

    def test_existing_checkpoint_without_resume_is_an_error(
        self, tmp_path, baseline
    ):
        path = tmp_path / "grid.jsonl"
        run_grid(small_grid(), workers=1, checkpoint=path)
        with pytest.raises(ExperimentError, match="resume"):
            run_grid(small_grid(), workers=1, checkpoint=path)

    def test_duplicate_cells_rejected(self, tmp_path):
        specs = small_grid()
        with pytest.raises(ExperimentError, match="duplicate"):
            run_grid(
                specs + specs[:1], workers=1,
                checkpoint=tmp_path / "dup.jsonl",
            )


class TestResume:
    def test_resume_skips_completed_cells(
        self, tmp_path, baseline, monkeypatch
    ):
        """Resuming a finished checkpoint re-runs nothing at all."""
        path = tmp_path / "grid.jsonl"
        run_grid(small_grid(), workers=1, checkpoint=path)

        def boom(*a, **kw):
            raise AssertionError("completed cell was re-run on resume")

        monkeypatch.setattr("repro.core.runner.run_spec", boom)
        probes = run_grid(
            small_grid(), workers=1, checkpoint=path, resume=True
        )
        assert [probe_key(p) for p in probes] == [
            probe_key(p) for p in baseline
        ]

    def test_crash_then_resume_equals_uninterrupted(self, tmp_path, baseline):
        """Deterministic mid-grid crash (injected cell fault), then resume."""
        specs = small_grid()
        plan = crashing_plan(specs, crash_index=2)
        path = tmp_path / "grid.jsonl"
        with pytest.raises(InjectedFaultError):
            run_grid(specs, workers=1, checkpoint=path, fault_plan=plan)
        # The first two cells made it to disk before the crash.
        assert len(load_checkpoint(path, specs)) == 2
        resumed = run_grid(specs, workers=1, checkpoint=path, resume=True)
        assert [probe_key(p) for p in resumed] == [
            probe_key(p) for p in baseline
        ]
        # No duplicates on disk either.
        keys = [probe_key(p) for p in load_probes_jsonl(path)]
        assert len(keys) == len(set(keys)) == len(baseline)

    def test_truncated_tail_is_discarded_and_rerun(self, tmp_path, baseline):
        """A line cut mid-write (the kill signature) costs one cell, not
        the checkpoint."""
        path = tmp_path / "grid.jsonl"
        run_grid(small_grid(), workers=1, checkpoint=path)
        text = path.read_text()
        path.write_text(text[: len(text) - 30])  # chop into the last record
        specs = small_grid()
        assert len(load_checkpoint(path, specs)) == len(specs) - 1
        resumed = run_grid(specs, workers=1, checkpoint=path, resume=True)
        assert [probe_key(p) for p in resumed] == [
            probe_key(p) for p in baseline
        ]

    def test_foreign_probes_are_ignored(self, tmp_path):
        """A checkpoint from a different grid resumes nothing."""
        path = tmp_path / "grid.jsonl"
        run_grid(small_grid(), workers=1, checkpoint=path)
        other = quick_grid(
            sizes=("SM",), icl_counts=(5,), n_sets=1, seeds=(2,),
            selections=("random",), n_queries=1,
        )
        assert load_checkpoint(path, other) == {}


class TestKillAndResume:
    def test_hard_killed_run_resumes_identically(self, tmp_path, baseline):
        """Child process dies via os._exit mid-grid (no finalizers — the
        closest stand-in for SIGKILL); the parent resumes its checkpoint
        and must reproduce the uninterrupted probe set exactly."""
        path = tmp_path / "grid.jsonl"
        child = f"""
import os
import repro.core.runner as runner
from repro.core import quick_grid, run_grid

specs = quick_grid(
    sizes=("SM",), icl_counts=(1, 2, 3), n_sets=1, seeds=(1,),
    selections=("random",), n_queries=1,
)
real_run_spec = runner.run_spec
calls = []

def dying_run_spec(spec, **kw):
    calls.append(spec.cell_key)
    if len(calls) == 3:
        os._exit(23)  # hard kill: no atexit, no finally, no flush
    return real_run_spec(spec, **kw)

runner.run_spec = dying_run_spec
run_grid(specs, workers=1, checkpoint={str(path)!r}, checkpoint_every=1)
raise SystemExit("grid finished; the kill never fired")
"""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
        proc = subprocess.run(
            [sys.executable, "-c", child],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert proc.returncode == 23, proc.stderr
        # Cells 1-2 were checkpointed (fsync before the kill), cell 3 not.
        specs = small_grid()
        done = load_checkpoint(path, specs)
        assert len(done) == 2
        resumed = run_grid(specs, workers=1, checkpoint=path, resume=True)
        assert [probe_key(p) for p in resumed] == [
            probe_key(p) for p in baseline
        ]
        keys = [probe_key(p) for p in load_probes_jsonl(path)]
        assert len(keys) == len(set(keys)) == len(baseline)
