"""Tests for sampling over sparse logits."""

import numpy as np
import pytest

from repro.errors import GenerationError
from repro.llm.sampling import SamplingParams, sample_token


class TestParams:
    def test_invalid(self):
        with pytest.raises(ValueError):
            SamplingParams(temperature=-1)
        with pytest.raises(ValueError):
            SamplingParams(top_p=0.0)
        with pytest.raises(ValueError):
            SamplingParams(top_k=-1)


class TestSampleToken:
    def test_greedy_argmax(self, rng):
        ids = np.array([10, 20, 30])
        logits = np.array([0.0, 5.0, 1.0])
        pos = sample_token(ids, logits, SamplingParams(greedy=True), rng)
        assert pos == 1

    def test_zero_temperature_greedy(self, rng):
        ids = np.array([10, 20])
        logits = np.array([1.0, 3.0])
        pos = sample_token(ids, logits, SamplingParams(temperature=0.0), rng)
        assert pos == 1

    def test_returns_position_not_id(self, rng):
        ids = np.array([99])
        pos = sample_token(ids, np.array([0.0]), SamplingParams(), rng)
        assert pos == 0

    def test_top_p_excludes_tail(self, rng):
        """A token with negligible mass below the nucleus is never drawn."""
        ids = np.array([1, 2, 3])
        logits = np.array([10.0, 9.5, -20.0])
        params = SamplingParams(top_p=0.9)
        draws = {sample_token(ids, logits, params, rng) for _ in range(200)}
        assert 2 not in draws

    def test_top_k_limits(self, rng):
        ids = np.arange(5)
        logits = np.array([5.0, 4.0, 3.0, 2.0, 1.0])
        params = SamplingParams(top_k=2, top_p=1.0, temperature=2.0)
        draws = {sample_token(ids, logits, params, rng) for _ in range(300)}
        assert draws <= {0, 1}

    def test_distribution_roughly_matches(self, rng):
        """Sampling frequencies track softmax probabilities."""
        ids = np.array([0, 1])
        logits = np.array([np.log(3.0), 0.0])  # p = 0.75 / 0.25
        params = SamplingParams(temperature=1.0, top_p=1.0)
        n = 4000
        ones = sum(
            sample_token(ids, logits, params, rng) for _ in range(n)
        )
        assert abs(ones / n - 0.25) < 0.03

    def test_temperature_sharpens(self, rng):
        ids = np.array([0, 1])
        logits = np.array([1.0, 0.0])
        cold = SamplingParams(temperature=0.2, top_p=1.0)
        hot = SamplingParams(temperature=5.0, top_p=1.0)
        n = 2000
        cold_ones = sum(sample_token(ids, logits, cold, rng) for _ in range(n))
        hot_ones = sum(sample_token(ids, logits, hot, rng) for _ in range(n))
        assert cold_ones < hot_ones

    def test_empty_raises(self, rng):
        with pytest.raises(GenerationError):
            sample_token(np.array([]), np.array([]), SamplingParams(), rng)

    def test_mismatched_raises(self, rng):
        with pytest.raises(GenerationError):
            sample_token(np.array([1]), np.array([1.0, 2.0]), SamplingParams(), rng)
