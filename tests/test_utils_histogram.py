"""Tests for the ASCII histogram renderer."""

import numpy as np
import pytest

from repro.utils.histogram import render_histogram


class TestRenderHistogram:
    def test_basic_structure(self):
        out = render_histogram([1.0, 2.0, 2.1, 3.0], bins=4, title="demo")
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert len(lines) == 5
        assert all("|" in ln for ln in lines[1:])

    def test_peak_bin_longest_bar(self):
        out = render_histogram([1.0] * 10 + [2.0], bins=2, width=20)
        lines = out.splitlines()
        assert lines[0].count("#") > lines[1].count("#")

    def test_weights_change_shape(self):
        values = [1.0, 2.0]
        heavy_right = render_histogram(values, weights=[0.1, 0.9], bins=2)
        heavy_left = render_histogram(values, weights=[0.9, 0.1], bins=2)
        assert heavy_right != heavy_left

    def test_markers_annotated(self):
        out = render_histogram(
            [1.0, 2.0, 3.0], bins=3, markers={"truth": 2.1}
        )
        assert "<- truth" in out

    def test_marker_at_max_edge(self):
        out = render_histogram([1.0, 2.0], bins=2, markers={"top": 2.0})
        assert "<- top" in out

    def test_fractions_sum_to_one(self):
        out = render_histogram(np.linspace(0, 1, 50), bins=5)
        fracs = [
            float(ln.split("|")[0].split()[-1].rstrip("%")) / 100
            for ln in out.splitlines()
        ]
        assert sum(fracs) == pytest.approx(1.0, abs=0.02)

    def test_constant_values(self):
        out = render_histogram([5.0, 5.0, 5.0], bins=3)
        assert "#" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            render_histogram([])
        with pytest.raises(ValueError):
            render_histogram([1.0], bins=0)
        with pytest.raises(ValueError):
            render_histogram([1.0, 2.0], weights=[1.0])
        with pytest.raises(ValueError):
            render_histogram([1.0], weights=[-1.0])
