"""Tests for the experiment grid specification."""

import pytest

from repro.core.grid import PAPER_ICL_COUNTS, ExperimentSpec, paper_grid, quick_grid
from repro.errors import ExperimentError


class TestExperimentSpec:
    def test_valid(self):
        spec = ExperimentSpec("SM", "random", 10, 0, 1)
        assert spec.cell_key == ("SM", "random", 10, 0, 1)
        assert spec.experiment_key == ("SM", "random", 10, 1)

    def test_invalid_size(self):
        with pytest.raises(ExperimentError):
            ExperimentSpec("XXL", "random", 10, 0, 1)

    def test_invalid_selection(self):
        with pytest.raises(ExperimentError):
            ExperimentSpec("SM", "greedy", 10, 0, 1)

    def test_invalid_counts(self):
        with pytest.raises(ExperimentError):
            ExperimentSpec("SM", "random", 0, 0, 1)
        with pytest.raises(ExperimentError):
            ExperimentSpec("SM", "random", 1, -1, 1)
        with pytest.raises(ExperimentError):
            ExperimentSpec("SM", "random", 1, 0, 1, n_queries=0)

    def test_hashable(self):
        a = ExperimentSpec("SM", "random", 10, 0, 1)
        b = ExperimentSpec("SM", "random", 10, 0, 1)
        assert a == b and hash(a) == hash(b)


class TestPaperGrid:
    def test_icl_counts_one_to_hundred(self):
        """Section III-B: one to one hundred examples."""
        assert min(PAPER_ICL_COUNTS) == 1
        assert max(PAPER_ICL_COUNTS) == 100

    def test_full_cardinality(self):
        specs = paper_grid()
        # 2 sizes x 2 selections x 7 ICL counts x 5 sets x 3 seeds
        assert len(specs) == 2 * 2 * 7 * 5 * 3

    def test_five_disjoint_sets_three_seeds(self):
        specs = paper_grid()
        assert {s.set_id for s in specs} == set(range(5))
        assert {s.seed for s in specs} == {1, 2, 3}

    def test_unique_cells(self):
        specs = paper_grid()
        assert len({s.cell_key for s in specs}) == len(specs)

    def test_quick_grid_smaller(self):
        assert len(quick_grid()) < len(paper_grid())

    def test_empty_grid_rejected(self):
        with pytest.raises(ExperimentError):
            paper_grid(sizes=())
