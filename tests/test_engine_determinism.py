"""The engine's determinism contract (what the serve result cache relies on).

:meth:`GenerationEngine.generate` promises bit-reproducibility for
identical ``(prompt, seed, sampling)`` triples: every step's candidate
ids, logits, and sampled choice must be equal across repeated calls.  The
full-result cache in :mod:`repro.serve` memoizes predictions on exactly
this key, so any drift here silently corrupts served results.
"""

import numpy as np
import pytest

from repro.llm import GenerationEngine, SamplingParams


@pytest.fixture(scope="module")
def prompt(tokenizer):
    text = (
        "Here are the examples:\n"
        "Hyperparameter configuration: size is SM, outer_loop_tiling_factor is 80\n"
        "Performance: 0.0022155\n\n"
        "Hyperparameter configuration: size is SM, outer_loop_tiling_factor is 64\n"
        "Performance: 0.0031921\n\n"
        "Please complete the following:\n"
        "Hyperparameter configuration: size is SM, outer_loop_tiling_factor is 128\n"
        "Performance:"
    )
    return np.asarray(tokenizer.encode(text), dtype=np.int64)


def assert_traces_identical(a, b):
    """Step-by-step bitwise equality of two generation traces."""
    assert len(a.steps) == len(b.steps)
    for sa, sb in zip(a.steps, b.steps):
        np.testing.assert_array_equal(sa.candidate_ids, sb.candidate_ids)
        np.testing.assert_array_equal(sa.logits, sb.logits)
        assert sa.chosen_position == sb.chosen_position


class TestDeterminismContract:
    def test_repeated_calls_bit_identical(self, engine, prompt):
        for seed in (0, 1, 17):
            assert_traces_identical(
                engine.generate(prompt, seed=seed),
                engine.generate(prompt, seed=seed),
            )

    def test_fresh_engine_same_model_identical(self, lm, prompt):
        """Reproducibility holds across engine instances (new processes)."""
        a = GenerationEngine(lm).generate(prompt, seed=5)
        b = GenerationEngine(lm).generate(prompt, seed=5)
        assert_traces_identical(a, b)

    def test_precomputed_analysis_identical(self, engine, lm, prompt):
        """The serve prepare-cache path cannot change the generation."""
        analysis = lm.prepare(prompt)
        assert_traces_identical(
            engine.generate(prompt, seed=3),
            engine.generate(prompt, seed=3, analysis=analysis),
        )

    def test_seed_changes_logits(self, engine, prompt):
        """Distinct seeds must not collide (they key distinct cache rows)."""
        a = engine.generate(prompt, seed=1)
        b = engine.generate(prompt, seed=2)
        differs = len(a.steps) != len(b.steps) or any(
            sa.candidate_ids.size != sb.candidate_ids.size
            or not np.array_equal(sa.logits, sb.logits)
            for sa, sb in zip(a.steps, b.steps)
        )
        assert differs

    def test_sampling_params_part_of_key(self, lm, prompt):
        """Greedy vs sampled decoding diverges: sampling params matter."""
        sampled = GenerationEngine(lm).generate(prompt, seed=9)
        greedy = GenerationEngine(
            lm, sampling=SamplingParams(greedy=True)
        ).generate(prompt, seed=9)
        # Not necessarily different text, but the contract only covers
        # equal sampling params; the traces must at least be comparable.
        assert_traces_identical(
            GenerationEngine(lm, sampling=SamplingParams(greedy=True)).generate(
                prompt, seed=9
            ),
            greedy,
        )
        assert len(sampled.steps) >= 1 and len(greedy.steps) >= 1
