"""Tests for the Section V-D numeric-head hybrid surrogate."""

import numpy as np
import pytest

from repro.analysis import score_predictions
from repro.core.hybrid import (
    GBTNumericHead,
    HybridSurrogate,
    KNNNumericHead,
    NumericHead,
)
from repro.dataset.splits import disjoint_example_sets
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def material(sm_dataset):
    sets, queries = disjoint_example_sets(
        sm_dataset, 1, 100, seed=6, n_queries=25
    )
    examples = [
        (sm_dataset.config(int(r)), float(sm_dataset.runtimes[int(r)]))
        for r in sets[0]
    ]
    truths = [float(sm_dataset.runtimes[int(q)]) for q in queries]
    configs = [sm_dataset.config(int(q)) for q in queries]
    return examples, configs, truths


class TestHeads:
    def test_knn_validation(self):
        with pytest.raises(AnalysisError):
            KNNNumericHead(k=0)
        with pytest.raises(AnalysisError):
            KNNNumericHead().predict_one(np.zeros(3))

    def test_gbt_unfitted(self):
        with pytest.raises(AnalysisError):
            GBTNumericHead().predict_one(np.zeros(3))

    def test_knn_exact_at_training_point(self, rng):
        x = rng.random((20, 4))
        y = rng.random(20) + 0.5
        head = KNNNumericHead(k=1).fit(x, y)
        assert head.predict_one(x[3]) == pytest.approx(y[3], rel=1e-6)

    def test_base_abstract(self):
        with pytest.raises(NotImplementedError):
            NumericHead().fit(np.zeros((1, 1)), np.zeros(1))


class TestHybridSurrogate:
    def test_always_parses(self, sm_task, material):
        examples, configs, truths = material
        hybrid = HybridSurrogate(sm_task)
        pred = hybrid.predict(examples, configs[0], seed=1)
        assert pred.parsed
        assert pred.value > 0
        assert pred.value == pytest.approx(float(pred.value_text))

    def test_value_format_matches_demonstrations(self, sm_task, material):
        """SM demonstrations have seven decimals; so does the splice."""
        examples, configs, _ = material
        hybrid = HybridSurrogate(sm_task)
        pred = hybrid.predict(examples, configs[0])
        assert len(pred.value_text.split(".")[1]) == 7

    def test_repairs_the_failure(self, sm_task, material):
        """The paper's Section V-D claim: delegating the number to a
        quantitative head restores regression quality at the same
        in-context budget (100 examples -> GBT-class R^2)."""
        examples, configs, truths = material
        hybrid = HybridSurrogate(sm_task, head=GBTNumericHead())
        preds = [hybrid.predict(examples, c).value for c in configs]
        metrics = score_predictions(truths, preds)
        assert metrics.r2 > 0.2, "hybrid must reach meaningful positive R^2"
        assert metrics.mare < 0.2

    def test_knn_head_reasonable(self, sm_task, material):
        examples, configs, truths = material
        hybrid = HybridSurrogate(sm_task, head=KNNNumericHead(k=7))
        preds = [hybrid.predict(examples, c).value for c in configs]
        metrics = score_predictions(truths, preds)
        assert metrics.mare < 0.35

    def test_needs_examples(self, sm_task, material):
        _, configs, _ = material
        hybrid = HybridSurrogate(sm_task)
        with pytest.raises(AnalysisError):
            hybrid.predict([], configs[0])

    def test_head_name_recorded(self, sm_task, material):
        examples, configs, _ = material
        hybrid = HybridSurrogate(sm_task, head=KNNNumericHead())
        assert hybrid.predict(examples, configs[0]).head_name == "knn"
