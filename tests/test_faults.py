"""Tests for :mod:`repro.faults`: deterministic, seedable fault injection.

The load-bearing property is purity: every fault decision is a function
of ``(plan seed, site, key)`` alone, which is what makes chaos drills
bit-reproducible instead of flaky.
"""

import pytest

from repro.errors import InjectedFaultError
from repro.faults import DEFAULT_FAULT_PLAN, FaultInjector, FaultPlan
from repro.serve.cache import MISS, LRUCache


class TestFaultPlanValidation:
    @pytest.mark.parametrize("field", [
        "transient_error_rate", "latency_spike_rate", "eviction_storm_rate",
        "queue_stall_rate", "cell_error_rate",
    ])
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(ValueError):
            FaultPlan(**{field: 1.5})
        with pytest.raises(ValueError):
            FaultPlan(**{field: -0.1})

    @pytest.mark.parametrize("field", ["latency_spike_s", "queue_stall_s"])
    def test_durations_must_be_nonnegative(self, field):
        with pytest.raises(ValueError):
            FaultPlan(**{field: -0.01})

    def test_active_flag(self):
        assert not FaultPlan().active
        assert FaultPlan(transient_error_rate=0.1).active
        assert DEFAULT_FAULT_PLAN.active


class TestFaultPlanDeterminism:
    def test_decisions_are_pure(self):
        a = FaultPlan(seed=11, transient_error_rate=0.5)
        b = FaultPlan(seed=11, transient_error_rate=0.5)
        assert [a.transient_error(k) for k in range(200)] == [
            b.transient_error(k) for k in range(200)
        ]

    def test_seed_changes_decisions(self):
        a = FaultPlan(seed=1, transient_error_rate=0.5)
        b = FaultPlan(seed=2, transient_error_rate=0.5)
        assert [a.transient_error(k) for k in range(200)] != [
            b.transient_error(k) for k in range(200)
        ]

    def test_sites_are_independent(self):
        plan = FaultPlan(
            seed=5, transient_error_rate=0.5, latency_spike_rate=0.5
        )
        errors = [plan.transient_error(k) for k in range(200)]
        spikes = [plan.latency_spike(k) > 0 for k in range(200)]
        assert errors != spikes

    def test_rate_extremes(self):
        never = FaultPlan(seed=1)
        always = FaultPlan(
            seed=1, transient_error_rate=1.0, latency_spike_rate=1.0,
            eviction_storm_rate=1.0, queue_stall_rate=1.0,
            cell_error_rate=1.0,
        )
        for key in range(50):
            assert not never.transient_error(key)
            assert never.latency_spike(key) == 0.0
            assert never.queue_stall(key) == 0.0
            assert always.transient_error(key)
            assert always.latency_spike(key) == always.latency_spike_s
            assert always.eviction_storm(key)
            assert always.queue_stall(key) == always.queue_stall_s
            assert always.cell_fault(key)

    def test_empirical_rate_matches_nominal(self):
        plan = FaultPlan(seed=9, transient_error_rate=0.3)
        hits = sum(plan.transient_error(k) for k in range(4000))
        assert 0.25 < hits / 4000 < 0.35


class TestFaultInjector:
    def test_transient_error_raises_and_counts(self):
        injector = FaultInjector(FaultPlan(seed=1, transient_error_rate=1.0))
        with pytest.raises(InjectedFaultError) as excinfo:
            injector.before_request(7)
        assert excinfo.value.site == "serve"
        assert excinfo.value.key == 7
        assert injector.stats.snapshot()["transient_errors"] == 1

    def test_eviction_storm_clears_caches(self):
        cache = LRUCache(8)
        cache.put("k", "v")
        injector = FaultInjector(FaultPlan(seed=1, eviction_storm_rate=1.0))
        injector.before_request(0, caches=(cache, None))
        assert cache.peek("k") is MISS
        assert injector.stats.snapshot()["evictions"] == 1

    def test_latency_spike_sleeps(self):
        slept = []
        injector = FaultInjector(
            FaultPlan(seed=1, latency_spike_rate=1.0, latency_spike_s=0.25),
            sleep=slept.append,
        )
        injector.before_request(0)
        assert slept == [0.25]
        assert injector.stats.snapshot()["latency_spikes"] == 1

    def test_queue_stall_sleeps(self):
        slept = []
        injector = FaultInjector(
            FaultPlan(seed=1, queue_stall_rate=1.0, queue_stall_s=0.125),
            sleep=slept.append,
        )
        injector.before_flush(1)
        assert slept == [0.125]
        assert injector.stats.snapshot()["stalls"] == 1

    def test_cell_fault_raises(self):
        injector = FaultInjector(FaultPlan(seed=1, cell_error_rate=1.0))
        with pytest.raises(InjectedFaultError):
            injector.before_cell(("SM", "random", 1, 0, 1))
        assert injector.stats.snapshot()["cell_faults"] == 1

    def test_quiet_plan_is_a_no_op(self):
        injector = FaultInjector(FaultPlan(seed=1))
        injector.before_request(0)
        injector.before_flush(0)
        injector.before_cell(0)
        assert injector.stats.total == 0

    def test_stats_rejects_unknown_kind(self):
        injector = FaultInjector(FaultPlan())
        with pytest.raises(ValueError):
            injector.stats.record("nonsense")

    def test_stats_render(self):
        injector = FaultInjector(FaultPlan(seed=1, transient_error_rate=1.0))
        with pytest.raises(InjectedFaultError):
            injector.before_request(0)
        out = injector.stats.render()
        assert "transient worker errors" in out
        assert "queue stalls" in out


class TestDiskFaults:
    """FaultyFile: torn writes, bitflips-after-ack, ENOSPC, fsync failure."""

    @pytest.mark.parametrize("field", [
        "torn_write_rate", "bitflip_rate", "enospc_rate", "fsync_fail_rate",
    ])
    def test_disk_rates_must_be_probabilities(self, field):
        with pytest.raises(ValueError):
            FaultPlan(**{field: 1.5})

    def test_disk_active_is_disk_specific(self):
        from repro.faults import DISK_FAULT_PLAN

        assert DISK_FAULT_PLAN.disk_active
        assert DISK_FAULT_PLAN.active
        assert not DEFAULT_FAULT_PLAN.disk_active
        assert not FaultPlan(seed=1, transient_error_rate=0.5).disk_active

    def test_wrap_file_passthrough_without_disk_faults(self, tmp_path):
        injector = FaultInjector(DEFAULT_FAULT_PLAN)
        with (tmp_path / "f.txt").open("w") as fh:
            assert injector.wrap_file(fh, "site", "f.txt") is fh

    def test_torn_write_lands_prefix_then_raises(self, tmp_path):
        injector = FaultInjector(FaultPlan(seed=3, torn_write_rate=1.0))
        path = tmp_path / "f.txt"
        with path.open("w") as fh:
            wrapped = injector.wrap_file(fh, "site", "f.txt")
            with pytest.raises(InjectedFaultError):
                wrapped.write("0123456789\n")
        text = path.read_text()
        assert "0123456789\n".startswith(text)
        assert len(text) < 11  # a strict prefix: the write really tore
        assert injector.stats.snapshot()["torn_writes"] == 1

    def test_enospc_lands_nothing(self, tmp_path):
        import errno

        injector = FaultInjector(FaultPlan(seed=3, enospc_rate=1.0))
        path = tmp_path / "f.txt"
        with path.open("w") as fh:
            wrapped = injector.wrap_file(fh, "site", "f.txt")
            with pytest.raises(OSError) as err:
                wrapped.write("payload\n")
        assert err.value.errno == errno.ENOSPC
        assert path.read_text() == ""
        assert injector.stats.snapshot()["enospc"] == 1

    def test_bitflip_corrupts_one_char_but_write_succeeds(self, tmp_path):
        injector = FaultInjector(FaultPlan(seed=3, bitflip_rate=1.0))
        path = tmp_path / "f.txt"
        payload = "abcdefghij\n"
        with path.open("w") as fh:
            wrapped = injector.wrap_file(fh, "site", "f.txt")
            wrapped.write(payload)  # no exception: fault is silent
        text = path.read_text()
        assert len(text) == len(payload)
        diffs = [i for i, (a, b) in enumerate(zip(payload, text)) if a != b]
        assert len(diffs) == 1
        assert "\n" not in text[:-1]  # never splits the record
        assert injector.stats.snapshot()["bitflips"] == 1

    def test_fsync_failure_raises_eio(self, tmp_path):
        import errno

        injector = FaultInjector(FaultPlan(seed=3, fsync_fail_rate=1.0))
        with (tmp_path / "f.txt").open("w") as fh:
            wrapped = injector.wrap_file(fh, "site", "f.txt")
            wrapped.write("safe\n")
            with pytest.raises(OSError) as err:
                wrapped.fsync()
        assert err.value.errno == errno.EIO
        assert injector.stats.snapshot()["fsync_failures"] == 1

    def test_fsync_passes_through_when_quiet(self, tmp_path):
        injector = FaultInjector(FaultPlan(seed=3, torn_write_rate=0.001))
        path = tmp_path / "f.txt"
        with path.open("w") as fh:
            wrapped = injector.wrap_file(fh, "site", "f.txt")
            wrapped.write("durable\n")
            wrapped.flush()
            wrapped.fsync()
        assert path.read_text() == "durable\n"

    def test_disk_fault_sequence_is_deterministic(self, tmp_path):
        """Same plan + same write sequence -> identical fault schedule."""
        def run():
            injector = FaultInjector(FaultPlan(
                seed=7, torn_write_rate=0.3, bitflip_rate=0.3,
                enospc_rate=0.1,
            ))
            path = tmp_path / "det.txt"
            outcomes = []
            with path.open("w") as fh:
                wrapped = injector.wrap_file(fh, "site", "det.txt")
                for i in range(30):
                    try:
                        wrapped.write(f"record-{i:04d}\n")
                        outcomes.append("ok")
                    except InjectedFaultError:
                        outcomes.append("torn")
                    except OSError:
                        outcomes.append("enospc")
            path.unlink()
            return outcomes, injector.stats.snapshot()

        assert run() == run()

    def test_default_plan_unchanged_by_disk_fields(self):
        """DEFAULT_FAULT_PLAN keeps its pre-disk-fault decisions: the
        chaos availability baselines must not shift."""
        assert DEFAULT_FAULT_PLAN.torn_write_rate == 0.0
        assert DEFAULT_FAULT_PLAN.seed == 20250806
        assert DEFAULT_FAULT_PLAN.transient_error(("probe", 3)) == FaultPlan(
            seed=20250806, transient_error_rate=0.08
        ).transient_error(("probe", 3))
