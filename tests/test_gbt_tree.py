"""Tests for the histogram regression tree."""

import numpy as np
import pytest

from repro.errors import ModelNotFittedError
from repro.gbt.histogram import bin_matrix
from repro.gbt.tree import RegressionTree, TreeParams


def _fit_squared_loss(x, y, params=None):
    """Fit one tree directly to targets under squared loss."""
    binned = bin_matrix(x)
    grad = -y  # pred starts at 0; grad = pred - y
    hess = np.ones_like(y)
    tree = RegressionTree(params).fit(binned, grad, hess)
    return tree, binned


class TestParams:
    def test_invalid(self):
        with pytest.raises(ValueError):
            TreeParams(max_depth=0)
        with pytest.raises(ValueError):
            TreeParams(min_samples_leaf=0)
        with pytest.raises(ValueError):
            TreeParams(reg_lambda=-1)


class TestFitting:
    def test_perfect_split(self):
        """A single binary feature perfectly explaining y is found."""
        x = np.array([[0.0], [0.0], [1.0], [1.0]])
        y = np.array([1.0, 1.0, 5.0, 5.0])
        tree, binned = _fit_squared_loss(
            x, y, TreeParams(max_depth=2, reg_lambda=0.0)
        )
        pred = tree.predict_binned(binned.codes)
        np.testing.assert_allclose(pred, y, atol=1e-9)

    def test_depth_limit(self, rng):
        x = rng.random((200, 4))
        y = rng.random(200)
        tree, _ = _fit_squared_loss(x, y, TreeParams(max_depth=2))
        assert tree.max_depth_reached() <= 3  # root=1, so <= max_depth+1

    def test_min_samples_leaf(self, rng):
        x = rng.random((100, 3))
        y = rng.random(100)
        binned = bin_matrix(x)
        tree = RegressionTree(TreeParams(min_samples_leaf=30)).fit(
            binned, -y, np.ones_like(y)
        )
        # Count samples per leaf via prediction node assignment.
        assert tree.n_leaves <= 100 // 30 + 1

    def test_reduces_loss(self, rng):
        x = rng.random((300, 5))
        y = x[:, 0] * 3 + rng.normal(0, 0.1, 300)
        tree, binned = _fit_squared_loss(x, y, TreeParams(max_depth=4))
        pred = tree.predict_binned(binned.codes)
        assert np.mean((pred - y) ** 2) < np.var(y) * 0.5

    def test_leaf_value_is_newton_step(self):
        """With lambda=0 a stump leaf equals the mean residual."""
        x = np.array([[0.0], [0.0], [1.0], [1.0]])
        y = np.array([2.0, 4.0, 10.0, 20.0])
        tree, binned = _fit_squared_loss(
            x, y, TreeParams(max_depth=1, reg_lambda=0.0)
        )
        pred = tree.predict_binned(binned.codes)
        np.testing.assert_allclose(pred[:2], 3.0)
        np.testing.assert_allclose(pred[2:], 15.0)

    def test_feature_mask(self, rng):
        x = rng.random((100, 2))
        y = x[:, 0]  # only feature 0 is informative
        binned = bin_matrix(x)
        mask = np.array([False, True])
        tree = RegressionTree(TreeParams(max_depth=3)).fit(
            binned, -y, np.ones_like(y), feature_mask=mask
        )
        used = set(tree.feature[tree.feature >= 0].tolist())
        assert 0 not in used

    def test_rows_subset(self, rng):
        x = rng.random((100, 2))
        y = rng.random(100)
        binned = bin_matrix(x)
        rows = np.arange(50)
        tree = RegressionTree().fit(binned, -y, np.ones_like(y), rows=rows)
        assert tree.n_nodes >= 1

    def test_gamma_prunes(self, rng):
        x = rng.random((200, 3))
        y = rng.normal(0, 1e-3, 200)  # almost no structure
        binned = bin_matrix(x)
        tree = RegressionTree(TreeParams(gamma=10.0)).fit(
            binned, -y, np.ones_like(y)
        )
        assert tree.n_leaves == 1  # nothing worth splitting

    def test_input_validation(self, rng):
        binned = bin_matrix(rng.random((10, 2)))
        with pytest.raises(ValueError):
            RegressionTree().fit(binned, np.zeros(5), np.ones(10))


class TestPrediction:
    def test_unfitted_raises(self):
        with pytest.raises(ModelNotFittedError):
            RegressionTree().predict_binned(np.zeros((1, 1), dtype=np.int32))

    def test_raw_matches_binned(self, rng):
        x = rng.random((150, 4))
        y = x[:, 1] * 2 + x[:, 2]
        tree, binned = _fit_squared_loss(x, y, TreeParams(max_depth=4))
        np.testing.assert_allclose(
            tree.predict_raw(x), tree.predict_binned(binned.codes)
        )

    def test_predicts_new_rows(self, rng):
        x = rng.random((100, 2))
        y = (x[:, 0] > 0.5).astype(float)
        tree, binned = _fit_squared_loss(x, y, TreeParams(max_depth=2))
        x_new = np.array([[0.9, 0.5], [0.1, 0.5]])
        pred = tree.predict_raw(x_new)
        assert pred[0] > pred[1]
