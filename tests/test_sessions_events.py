"""Tests for the session event log: schema, journal, replay."""

import pytest

from repro.core.storage import append_events_jsonl, load_events_jsonl
from repro.dataset import Syr2kPerformanceModel, Syr2kTask, syr2k_space
from repro.errors import ExperimentError, SessionError
from repro.sessions import (
    EVENT_KIND,
    SessionEventLog,
    TuningSession,
    eval_event,
    register_event,
    replay_log,
    state_event,
)
from repro.tuning import RandomSearchTuner


@pytest.fixture(scope="module")
def model():
    return Syr2kPerformanceModel(Syr2kTask("SM"))


def make_session(model, sid="t0/s0", seed=3, budget=6):
    return TuningSession(
        sid,
        "t0",
        RandomSearchTuner(syr2k_space(), seed=seed),
        model,
        budget,
        priority=2,
        seed=11,
    )


class TestEventBuilders:
    def test_register_carries_rebuild_recipe(self, model):
        event = register_event(make_session(model))
        assert event["event"] == "register"
        assert event["tuner"] == "random"
        assert event["tuner_seed"] == 3
        assert event["budget"] == 6
        assert event["priority"] == 2
        assert event["seed"] == 11
        assert event["size"] == "SM"

    def test_state_event_reason_optional(self):
        assert "reason" not in state_event("s", "RUNNING")
        assert state_event("s", "FAILED", "boom")["reason"] == "boom"

    def test_eval_event_fields(self):
        event = eval_event("s", 2, 17, 0.5, predicted=0.4,
                           provenance="service", degraded=False)
        assert (event["step"], event["index"], event["runtime"]) == (
            2, 17, 0.5,
        )


class TestSessionEventLog:
    def test_buffers_until_flush(self, tmp_path):
        log = SessionEventLog(tmp_path / "log.jsonl")
        log.emit(state_event("s", "RUNNING"))
        assert len(log) == 1
        assert not log.path.exists()
        log.flush()
        assert len(log) == 0
        assert len(load_events_jsonl(log.path, kind=EVENT_KIND)) == 1

    def test_flush_empty_is_noop(self, tmp_path):
        log = SessionEventLog(tmp_path / "log.jsonl")
        log.flush()
        assert not log.path.exists()


class TestReplayLog:
    def write(self, path, events):
        append_events_jsonl(events, path, kind=EVENT_KIND)

    def test_roundtrip(self, tmp_path, model):
        path = tmp_path / "log.jsonl"
        session = make_session(model)
        self.write(path, [
            register_event(session),
            state_event("t0/s0", "RUNNING"),
            eval_event("t0/s0", 0, 4, 0.9),
            eval_event("t0/s0", 1, 7, 0.8),
        ])
        entry = replay_log(path)["t0/s0"]
        assert entry["meta"]["tenant"] == "t0"
        assert entry["state"] == "RUNNING"
        assert entry["evals"] == [(0, 4, 0.9), (1, 7, 0.8)]

    def test_duplicate_steps_first_wins(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self.write(path, [
            eval_event("s", 0, 4, 0.9),
            eval_event("s", 0, 4, 0.9),
            eval_event("s", 1, 2, 0.7),
        ])
        assert replay_log(path)["s"]["evals"] == [(0, 4, 0.9), (1, 2, 0.7)]

    def test_gap_truncates_to_contiguous_prefix(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self.write(path, [
            eval_event("s", 0, 4, 0.9),
            eval_event("s", 2, 2, 0.7),
        ])
        assert replay_log(path)["s"]["evals"] == [(0, 4, 0.9)]

    def test_truncated_tail_tolerated(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self.write(path, [eval_event("s", 0, 4, 0.9)])
        with path.open("a") as fh:
            fh.write('{"event": "eval", "session": "s", "st')
        assert replay_log(path)["s"]["evals"] == [(0, 4, 0.9)]

    def test_unknown_event_type_raises(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self.write(path, [{"event": "mystery", "session": "s"}])
        with pytest.raises(SessionError, match="unknown event"):
            replay_log(path)

    def test_wrong_kind_raises(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_events_jsonl(
            [{"event": "eval"}], path, kind="other-events"
        )
        with pytest.raises(ExperimentError, match="other-events"):
            replay_log(path)


class TestSessionReplay:
    def test_replay_fast_forwards_tuner(self, model):
        """Replaying the log reproduces the exact killed-run state:
        the next proposal equals what an uninterrupted run proposes."""
        full = make_session(model, seed=9)
        full.start()
        trajectory = []
        for step in range(4):
            index = full.next_proposal()
            runtime = float(model.measure([index], rep=step + 1)[0])
            full.record(index, runtime)
            trajectory.append((step, index, runtime))
        expected_next = full.next_proposal()

        resumed = make_session(model, seed=9)
        resumed.replay(trajectory)
        assert resumed.history.indices == full.history.indices
        assert resumed.history.runtimes == full.history.runtimes
        resumed.start()
        assert resumed.next_proposal() == expected_next

    def test_replay_divergence_detected(self, model):
        probe = make_session(model, seed=9)
        probe.start()
        wrong = (probe.next_proposal() + 1) % model.space.size
        session = make_session(model, seed=9)
        with pytest.raises(SessionError, match="diverges"):
            session.replay([(0, wrong, 0.5)])

    def test_replay_gap_detected(self, model):
        session = make_session(model, seed=9)
        with pytest.raises(SessionError, match="gap"):
            session.replay([(1, 0, 0.5)])

    def test_replay_full_budget_marks_done(self, model):
        donor = make_session(model, seed=9, budget=3)
        donor.start()
        trajectory = []
        for step in range(3):
            index = donor.next_proposal()
            runtime = float(model.measure([index], rep=step + 1)[0])
            donor.record(index, runtime)
            trajectory.append((step, index, runtime))
        resumed = make_session(model, seed=9, budget=3)
        resumed.replay(trajectory)
        assert resumed.state == "DONE"
