"""Cross-module property-based tests (hypothesis).

These check invariants that span subsystem boundaries — the places unit
tests of single modules cannot reach.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.decoding import StepCandidates, enumerate_value_decodings
from repro.analysis.metrics import mare, msre, r2_score
from repro.dataset import generate_dataset, syr2k_space
from repro.llm.tokenizer import Tokenizer, chunk_digits
from repro.prompts.parser import extract_prediction
from repro.prompts.serialize import format_runtime
from repro.utils.rng import derive_seed

_SPACE = syr2k_space()
_TOK = Tokenizer()

index_strategy = st.integers(min_value=0, max_value=_SPACE.size - 1)
runtime_strategy = st.floats(
    min_value=1e-4, max_value=9.99, allow_nan=False, allow_infinity=False
)


class TestSpaceSerializationRoundtrip:
    @given(index_strategy)
    @settings(max_examples=50, deadline=None)
    def test_index_config_serialize_parse_roundtrip(self, idx):
        """space index -> config -> prompt text -> parsed config -> index."""
        from repro.prompts.serialize import deserialize_config, serialize_config

        cfg = _SPACE.from_index(idx)
        text = serialize_config(cfg, "SM")
        parsed, size = deserialize_config(text, _SPACE)
        assert size == "SM"
        assert _SPACE.to_index(parsed) == idx


class TestValueStringPipeline:
    @given(runtime_strategy)
    @settings(max_examples=60, deadline=None)
    def test_serialize_tokenize_parse_roundtrip(self, value):
        """runtime -> formatted string -> tokens -> decoded -> parsed value
        agrees with the original within formatting precision."""
        text = format_runtime(value)
        ids = _TOK.encode(text)
        decoded = _TOK.decode(ids)
        assert decoded == text
        parsed, matched = extract_prediction(decoded)
        assert matched == text
        assert parsed == pytest.approx(float(text))

    @given(runtime_strategy)
    @settings(max_examples=40, deadline=None)
    def test_value_token_shape(self, value):
        """Every serialized runtime begins digit-chunk, then '.', and every
        later token is a digit chunk (Section IV-B's premise)."""
        strs = _TOK.token_strings(_TOK.encode(format_runtime(value)))
        assert strs[0].isdigit()
        assert strs[1] == "."
        assert all(s.isdigit() for s in strs[2:])

    @given(st.text(alphabet="0123456789", min_size=1, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_chunking_partitions(self, digits):
        chunks = chunk_digits(digits)
        assert "".join(chunks) == digits
        assert all(1 <= len(c) <= 3 for c in chunks)
        assert all(len(c) == 3 for c in chunks[:-1])


class TestDecodingInvariants:
    @given(
        st.lists(
            st.lists(
                st.sampled_from(["0", "1", "27", "003", ".", "\n"]),
                min_size=1,
                max_size=4,
                unique=True,
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_enumeration_sound(self, token_lists):
        """Every enumerated candidate is a parsable decimal whose tokens
        come from the per-step candidate sets."""
        steps = [
            StepCandidates(tuple(toks), np.zeros(len(toks)), 0)
            for toks in token_lists
        ]
        alts = enumerate_value_decodings(steps, max_candidates=200)
        for cand in alts.candidates:
            assert cand.value == float(cand.text)
            assert cand.text.count(".") <= 1
        # Probabilities are a distribution when any candidate exists.
        if alts.candidates:
            assert abs(alts.probs.sum() - 1.0) < 1e-9

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30, deadline=None)
    def test_seed_derivation_stable_and_spread(self, seed):
        children = {derive_seed(seed, "x", i) for i in range(16)}
        assert len(children) == 16


class TestMetricRelations:
    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=100, allow_nan=False),
            min_size=2,
            max_size=12,
        ),
        st.floats(min_value=-0.5, max_value=0.5, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_msre_at_most_mare_squared_bound(self, truths, shift):
        """For a constant *relative* shift r, MARE = |r| and MSRE = r^2."""
        y = np.asarray(truths)
        pred = y * (1 + shift)
        assert mare(y, pred) == pytest.approx(abs(shift))
        assert msre(y, pred) == pytest.approx(shift**2)

    @given(
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=3,
            max_size=12,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_r2_shift_invariance(self, values):
        """R^2 is invariant under adding a constant to both vectors."""
        y = np.asarray(values)
        if np.allclose(y, y[0]):
            return
        pred = y * 0.9 + 0.3
        a = r2_score(y, pred)
        b = r2_score(y + 5.0, pred + 5.0)
        assert a == pytest.approx(b, rel=1e-9, abs=1e-9)


class TestDatasetPipelineInvariants:
    def test_every_size_generates_positive_runtimes(self):
        for size in ("S", "M", "ML", "L"):
            ds = generate_dataset(size, indices=range(500))
            assert (ds.runtimes > 0).all()
            assert np.isfinite(ds.runtimes).all()

    def test_size_ordering_of_runtimes(self):
        """Bigger problems run longer (median over a fixed config subset)."""
        medians = []
        for size in ("S", "SM", "M", "ML", "L", "XL"):
            ds = generate_dataset(size, indices=range(300))
            medians.append(float(np.median(ds.runtimes)))
        assert medians == sorted(medians)
