"""Tests for the deterministic seed-derivation tree."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import (
    SeedSequenceTree,
    derive_seed,
    permutation_without_replacement,
    rng_from,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_path_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a", 0) != derive_seed(1, "a", 1)

    def test_parent_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_stateless_sibling_independence(self):
        """Deriving one child never perturbs another's value."""
        before = derive_seed(7, "exp", 3)
        _ = [derive_seed(7, "exp", i) for i in range(10)]
        assert derive_seed(7, "exp", 3) == before

    def test_path_component_types_distinguished(self):
        assert derive_seed(1, 2) != derive_seed(1, "2")

    def test_fits_int64(self):
        for i in range(50):
            s = derive_seed(i, "check")
            assert 0 <= s < 2**63

    @given(st.integers(min_value=0, max_value=2**64 - 1), st.text(max_size=20))
    def test_always_valid_range(self, parent, label):
        s = derive_seed(parent, label)
        assert 0 <= s < 2**63


class TestRngFrom:
    def test_same_stream(self):
        a = rng_from(5, "x").random(4)
        b = rng_from(5, "x").random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_streams(self):
        a = rng_from(5, "x").random(4)
        b = rng_from(5, "y").random(4)
        assert not np.array_equal(a, b)


class TestSeedSequenceTree:
    def test_child_determinism(self):
        root = SeedSequenceTree(42)
        assert root.child("a", 1) == SeedSequenceTree(42).child("a", 1)

    def test_spawn_indices(self):
        root = SeedSequenceTree(42)
        kids = root.spawn(3, "workers")
        assert len(kids) == 3
        assert len({k.seed for k in kids}) == 3
        assert kids[1] == root.child("workers", 1)

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            SeedSequenceTree(1).spawn(-1)

    def test_rng_path(self):
        root = SeedSequenceTree(9)
        a = root.rng("x").random()
        b = root.child("x").rng().random()
        assert a == b

    def test_non_int_seed_raises(self):
        with pytest.raises(TypeError):
            SeedSequenceTree("abc")

    def test_hashable(self):
        assert len({SeedSequenceTree(1), SeedSequenceTree(1)}) == 1

    def test_repr(self):
        assert "SeedSequenceTree" in repr(SeedSequenceTree(3))


class TestPermutationWithoutReplacement:
    def test_distinct(self, rng):
        idx = permutation_without_replacement(rng, 100, 30)
        assert len(set(idx.tolist())) == 30

    def test_k_equals_n(self, rng):
        idx = permutation_without_replacement(rng, 5, 5)
        assert sorted(idx.tolist()) == [0, 1, 2, 3, 4]

    def test_too_many_raises(self, rng):
        with pytest.raises(ValueError):
            permutation_without_replacement(rng, 3, 4)

    def test_negative_raises(self, rng):
        with pytest.raises(ValueError):
            permutation_without_replacement(rng, -1, 0)
