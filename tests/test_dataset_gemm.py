"""Tests for the GEMM companion kernel substrate."""

import numpy as np
import pytest

from repro.dataset import (
    GemmPerformanceModel,
    GemmTask,
    Syr2kPerformanceModel,
    Syr2kTask,
    gemm_space,
    generate_dataset,
)
from repro.errors import DatasetError


class TestGemmTask:
    def test_dimensions(self):
        task = GemmTask("SM")
        assert task.m == 140 and task.n == 170 and task.k == 120
        assert task.kernel == "gemm"

    def test_flops(self):
        task = GemmTask("SM")
        assert task.flops == 2.0 * 140 * 170 * 120

    def test_unknown_size(self):
        with pytest.raises(DatasetError):
            GemmTask("HUGE")

    def test_space_matches_syr2k_structure(self, space):
        g = gemm_space()
        assert g.size == space.size
        assert g.parameter_names == space.parameter_names
        assert g.name == "polybench-gemm"

    def test_str(self):
        assert "gemm[SM]" in str(GemmTask("SM"))


class TestGemmModel:
    def test_requires_gemm_task(self):
        with pytest.raises(DatasetError):
            GemmPerformanceModel(Syr2kTask("SM"))

    def test_magnitude_bands(self):
        for size, lo, hi in (("SM", 0.0, 1.0), ("XL", 1.0, 10.0)):
            r = generate_dataset(GemmTask(size)).runtimes
            assert (r > lo).all() and (r < hi).all()

    def test_deterministic(self):
        a = generate_dataset(GemmTask("SM"), indices=range(100))
        b = generate_dataset(GemmTask("SM"), indices=range(100))
        np.testing.assert_array_equal(a.runtimes, b.runtimes)

    def test_noise_independent_from_syr2k(self):
        """GEMM's rugged/noise tables are distinct draws from syr2k's, so
        the two kernels are not spuriously correlated."""
        gemm = GemmPerformanceModel(GemmTask("SM"))
        syr2k = Syr2kPerformanceModel(Syr2kTask("SM"))
        assert not np.array_equal(gemm._rugged_z[:100], syr2k._rugged_z[:100])

    def test_syr2k_tables_unchanged_by_gemm_existence(self):
        """The syr2k calibration is frozen: its noise derivation path did
        not change when the kernel tag was introduced."""
        ds = generate_dataset("SM", indices=[0, 1, 2])
        # Regression pin: first three SM runtimes of the canonical table.
        assert ds.runtimes.shape == (3,)
        assert (ds.runtimes > 0.0005).all() and (ds.runtimes < 0.02).all()

    def test_k_extent_matters(self):
        """The inner tile is bounded by K for gemm (K < M, N at SM), so
        tile-128 and tile-100 behave identically only when both exceed K."""
        model = GemmPerformanceModel(GemmTask("SM"))
        space = model.space
        base = dict(
            first_array_packed=False,
            second_array_packed=False,
            interchange_first_two_loops=False,
            outer_loop_tiling_factor=64,
            middle_loop_tiling_factor=64,
        )
        big = space.to_index(dict(base, inner_loop_tiling_factor=128))
        bigger = space.to_index(dict(base, inner_loop_tiling_factor=100))
        # Both tiles exceed K=120? 100 < 120 <= 128: they must differ.
        nl = model.noiseless_runtimes([big, bigger])
        assert nl[0] != nl[1]


class TestGemmEndToEnd:
    def test_surrogate_prediction(self):
        """The whole prompt->generate->parse pipeline works for GEMM."""
        from repro.core.surrogate import DiscriminativeSurrogate

        task = GemmTask("SM")
        ds = generate_dataset(task, indices=range(600))
        surrogate = DiscriminativeSurrogate(task)
        examples = [
            (ds.config(i), float(ds.runtimes[i])) for i in range(0, 50, 5)
        ]
        pred = surrogate.predict(examples, ds.config(100), seed=1)
        assert pred.parsed and pred.value is not None
        assert pred.value < 1.0  # learned GEMM-SM magnitude from context

    def test_cross_kernel_transfer(self):
        """Copula transfer syr2k -> gemm beats random search: the good
        regions of the two kernels' spaces overlap."""
        from repro.tuning import (
            CopulaTransferTuner,
            RandomSearchTuner,
            compare_tuners,
        )

        source = generate_dataset("SM")  # syr2k SM
        model = GemmPerformanceModel(GemmTask("SM"))
        space = gemm_space()
        cmp = compare_tuners(
            [
                RandomSearchTuner(space, seed=4),
                CopulaTransferTuner(space, source, seed=4),
            ],
            model,
            budget=20,
            repetitions=3,
        )
        assert cmp.mean_best("copula-transfer") <= cmp.mean_best("random")
