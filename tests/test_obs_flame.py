"""Tests for :mod:`repro.obs.flame`: folded stacks and speedscope export.

The tricky part of flame export is the *sequenced* tree walk: spans may
overlap, spill past their parent (cross-process ``shard.worker`` returns
at submit time while its subtree finishes later), or repeat the same
path.  These tests pin the invariants both formats need — strict
nesting, self-time accounting, merged duplicate paths — on hand-built
span forests where the right answer is checkable by eye.
"""

import json

from repro.obs import (
    Span,
    folded_stacks,
    speedscope_document,
    write_folded,
    write_speedscope,
)


def _span(name, span_id, parent_id, start_s, duration_s):
    return Span(name=name, span_id=span_id, parent_id=parent_id,
                start_s=start_s, duration_s=duration_s)


def _values(lines):
    out = {}
    for line in lines:
        path, value = line.rsplit(" ", 1)
        out[path] = int(value)
    return out


class TestFoldedStacks:
    def test_self_time_subtracts_children(self):
        lines = folded_stacks([
            _span("root", 1, None, 0.0, 1.0),
            _span("child", 2, 1, 0.2, 0.5),
        ])
        values = _values(lines)
        assert values == {
            "root": 500_000,
            "root;child": 500_000,
        }

    def test_duplicate_paths_merge(self):
        lines = folded_stacks([
            _span("root", 1, None, 0.0, 1.0),
            _span("op", 2, 1, 0.0, 0.2),
            _span("op", 3, 1, 0.5, 0.3),
        ])
        values = _values(lines)
        assert values["root;op"] == 500_000
        assert values["root"] == 500_000

    def test_leaf_with_zero_duration_is_kept(self):
        lines = folded_stacks([_span("instant", 1, None, 5.0, 0.0)])
        assert lines == ["instant 0"]

    def test_fully_covered_parent_is_dropped(self):
        # The child covers the whole window: the parent frame carries no
        # self time and would only add noise.
        lines = folded_stacks([
            _span("root", 1, None, 0.0, 1.0),
            _span("child", 2, 1, 0.0, 1.0),
        ])
        assert _values(lines) == {"root;child": 1_000_000}

    def test_parent_window_widens_to_cover_subtree(self):
        # shard.worker closes at submit time (1ms) but its child runs
        # for 20ms more; the subtree must not be clamped away.
        lines = folded_stacks([
            _span("shard.worker", 1, None, 0.0, 0.001),
            _span("serve.request", 2, 1, 0.001, 0.020),
        ])
        values = _values(lines)
        assert values["shard.worker;serve.request"] == 20_000
        assert values["shard.worker"] == 1_000

    def test_overlapping_siblings_are_sequenced(self):
        # Second child starts before the first ends: it is begun at the
        # first's end so intervals never overlap, and total child time
        # never exceeds the parent window.
        lines = folded_stacks([
            _span("root", 1, None, 0.0, 1.0),
            _span("a", 2, 1, 0.0, 0.6),
            _span("b", 3, 1, 0.4, 0.6),
        ])
        values = _values(lines)
        assert values["root;a"] == 600_000
        assert values["root;b"] == 400_000
        assert "root" not in values  # fully covered


class TestSpeedscope:
    def test_document_structure(self):
        doc = speedscope_document([
            _span("root", 1, None, 0.0, 1.0),
            _span("child", 2, 1, 0.2, 0.5),
        ])
        assert doc["$schema"].startswith("https://www.speedscope.app")
        assert [f["name"] for f in doc["shared"]["frames"]] == [
            "root", "child",
        ]
        (profile,) = doc["profiles"]
        assert profile["type"] == "evented"
        assert profile["unit"] == "seconds"
        assert profile["startValue"] == 0.0
        assert profile["endValue"] == 1.0

    def test_events_nest_strictly(self):
        doc = speedscope_document([
            _span("root", 1, None, 0.0, 1.0),
            _span("a", 2, 1, 0.0, 0.6),
            _span("b", 3, 1, 0.4, 0.6),
            _span("leaf", 4, 3, 0.5, 0.1),
        ])
        (profile,) = doc["profiles"]
        stack = []
        last_at = profile["startValue"]
        for event in profile["events"]:
            assert event["at"] >= last_at
            last_at = event["at"]
            if event["type"] == "O":
                stack.append(event["frame"])
            else:
                assert stack and stack.pop() == event["frame"]
        assert stack == []

    def test_one_profile_per_root(self):
        doc = speedscope_document([
            _span("req", 1, None, 0.0, 0.5),
            _span("req", 2, None, 1.0, 0.5),
            _span("inner", 3, 2, 1.1, 0.2),
        ])
        assert [p["name"] for p in doc["profiles"]] == [
            "req #1", "req #2",
        ]

    def test_orphans_become_roots(self):
        # A span whose parent never arrived (SIGKILLed shard) still
        # renders — as its own root profile, not a crash.
        doc = speedscope_document([
            _span("stranded", 9, 12345, 0.0, 0.3),
        ])
        assert [p["name"] for p in doc["profiles"]] == ["stranded #9"]


class TestWriters:
    def test_write_folded(self, tmp_path):
        spans = [
            _span("root", 1, None, 0.0, 1.0),
            _span("child", 2, 1, 0.2, 0.5),
        ]
        path = tmp_path / "trace.folded"
        assert write_folded(spans, path) == 2
        body = path.read_text()
        assert body.endswith("\n")
        assert _values(body.splitlines())["root;child"] == 500_000

    def test_write_speedscope(self, tmp_path):
        spans = [_span("root", 1, None, 0.0, 1.0)]
        path = tmp_path / "trace.speedscope.json"
        assert write_speedscope(spans, path, name="bench") == 1
        doc = json.loads(path.read_text())
        assert doc["name"] == "bench"
        assert len(doc["profiles"]) == 1
