"""Setup shim: setup.cfg holds the metadata.

Packaging deliberately uses the legacy setuptools path (no pyproject
build-system section) so ``pip install -e .`` works in fully offline
environments, where PEP-517 build isolation would try to download
setuptools/wheel.
"""

from setuptools import setup

setup()
