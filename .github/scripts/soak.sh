#!/usr/bin/env bash
# Shared SLO-soak entry point for CI.
#
# The nightly-soak workflow and the PR loadtest-smoke job run THIS SAME
# script with different env knobs, so a PR exercises exactly the command
# the nightly gate will run — only shorter.  Every knob has a default
# matching the nightly profile; override via environment:
#
#   SOAK_ARRIVAL   arrival process            (default: poisson)
#   SOAK_RPS       mean offered rate          (default: 120)
#   SOAK_DURATION  schedule horizon, seconds  (default: 60)
#   SOAK_SHARDS    shard worker replicas      (default: 2)
#   SOAK_SESSIONS  ride-along campaigns       (default: 3)
#   SOAK_SEED      root seed                  (default: 7)
#   SOAK_REPORT    SLO report output path     (default: loadtest_report.json)
#   SOAK_TELEMETRY timeline output path       (default: telemetry.jsonl)
#   SOAK_TELEMETRY_INTERVAL  sampler cadence  (default: 0.5)
#
# Exit code is the SLO verdict: non-zero on any policy violation or
# determinism divergence.  The telemetry timeline is written regardless
# and uploaded by the calling workflow; `repro top $SOAK_TELEMETRY`
# replays the soak after the fact.
set -euo pipefail

SOAK_ARRIVAL="${SOAK_ARRIVAL:-poisson}"
SOAK_RPS="${SOAK_RPS:-120}"
SOAK_DURATION="${SOAK_DURATION:-60}"
SOAK_SHARDS="${SOAK_SHARDS:-2}"
SOAK_SESSIONS="${SOAK_SESSIONS:-3}"
SOAK_SEED="${SOAK_SEED:-7}"
SOAK_REPORT="${SOAK_REPORT:-loadtest_report.json}"
SOAK_TELEMETRY="${SOAK_TELEMETRY:-telemetry.jsonl}"
SOAK_TELEMETRY_INTERVAL="${SOAK_TELEMETRY_INTERVAL:-0.5}"

exec python -m repro loadtest \
  --arrival "${SOAK_ARRIVAL}" \
  --rps "${SOAK_RPS}" \
  --duration "${SOAK_DURATION}" \
  --shards "${SOAK_SHARDS}" \
  --sessions "${SOAK_SESSIONS}" \
  --seed "${SOAK_SEED}" \
  --check-determinism \
  --slo default \
  --report-json "${SOAK_REPORT}" \
  --telemetry "${SOAK_TELEMETRY}" \
  --telemetry-interval "${SOAK_TELEMETRY_INTERVAL}"
