"""Table II — variability in the number of selectable tokens per position.

Paper's rows (mean / std of nonzero-logit candidate counts by value-token
position, over 284 generations):

    1st token:  4.176 /   8.805   (n=284)
    2nd token:  1.000 /   0.000   (n=284)   <- always the '.' separator
    3rd token: 318.8  / 353.7     (n=284)
    4th token: 537.6  / 327.7     (n=283)
    5th token:  10.16 /  45.3     (n=201)
    Permutations: 43.6M mean

Expected reproduction shape: small first-token choice (variation coming
from XL prompts only), exactly one option at the '.' position, hundreds
of options at fraction positions 3-4, a collapse at position 5, and a
combinatorial haystack comparable to (or exceeding) the 10,648-point
search space.
"""

import numpy as np
import pytest

from repro.analysis import enumerate_value_decodings, token_position_table
from repro.utils.tables import Table


@pytest.fixture(scope="module")
def alternatives(grid_probes):
    out = []
    for p in grid_probes:
        if p.value_steps:
            out.append(
                (p.spec.size,
                 enumerate_value_decodings(p.value_steps, max_candidates=50))
            )
    return out


def test_table2_token_variability(alternatives, emit, benchmark, grid_probes):
    sample = next(p for p in grid_probes if p.value_steps)
    benchmark.pedantic(
        enumerate_value_decodings,
        args=(sample.value_steps,),
        kwargs={"max_candidates": 50},
        rounds=1,
        iterations=1,
    )

    alts = [a for _, a in alternatives]
    rows, perm = token_position_table(alts)

    t = Table(
        ["position", "mean # possibilities", "std # possibilities", "n samples"],
        title="Table II: selectable-token variability by value position",
    )
    for r in rows[:9]:
        t.add_row(
            [f"token {r.position}", r.mean_possibilities,
             r.std_possibilities, r.n_samples]
        )
    t.add_row(
        ["permutations", perm.mean_possibilities, perm.std_possibilities,
         perm.n_samples]
    )

    # First-token variation split by size ("Variation in the first token
    # selection only exists for prompts with the XL array size").
    sm_first = [a.position_counts[0] for s, a in alternatives if s == "SM"]
    xl_first = [a.position_counts[0] for s, a in alternatives if s == "XL"]
    split = Table(["size", "mean 1st-token possibilities"],
                  title="First-token variation by size")
    split.add_row(["SM", float(np.mean(sm_first))])
    split.add_row(["XL", float(np.mean(xl_first))])
    emit("table2_token_variability", t.render() + "\n\n" + split.render())

    # --- shape assertions -------------------------------------------- #
    assert rows[0].mean_possibilities < 20, "few first-token options"
    assert rows[1].mean_possibilities < 1.5, "'.' is (almost) forced"
    assert rows[2].mean_possibilities > 100, "hundreds of options at pos 3"
    assert rows[3].mean_possibilities > 100, "hundreds of options at pos 4"
    if len(rows) > 4:
        assert rows[4].mean_possibilities < rows[3].mean_possibilities, (
            "position 5 collapses relative to 3-4"
        )
    assert perm.mean_possibilities > 10648, (
        "the decoding haystack rivals the configuration space itself"
    )
    assert float(np.mean(xl_first)) > float(np.mean(sm_first)), (
        "first-token variation comes from XL prompts"
    )
