"""Figure 3 — curated-ICL generations cluster on common ICL prefixes.

The paper's figure shows, for the minimal-edit-distance curated setting,
the probability mass of generable values peaking around the densest
in-context example values.  We regenerate it as a cluster table: for each
curated-experiment generation, candidate probability mass is attributed
to the ICL value sharing the longest prefix, and mass is shown against
each ICL value's multiplicity in context.

Expected shape: the densest ICL values capture the most mass; the
mass-weighted prefix overlap is high; exact-copy mass is substantial but
below full copying.
"""

import numpy as np
import pytest

from repro.analysis import enumerate_value_decodings
from repro.analysis.copying import prefix_clusters
from repro.utils.tables import Table


@pytest.fixture(scope="module")
def curated_reports(grid_probes):
    reports = []
    for p in grid_probes:
        if p.spec.selection != "curated" or p.spec.n_icl < 10:
            continue
        if not p.value_steps:
            continue
        alts = enumerate_value_decodings(p.value_steps, max_candidates=500)
        if not alts.candidates:
            continue
        reports.append(
            (p, prefix_clusters(alts, p.icl_value_strings, min_prefix=3))
        )
    return reports


def test_fig3_prefix_clustering(curated_reports, emit, benchmark, grid_probes):
    sample = next(p for p in grid_probes if p.value_steps)
    benchmark.pedantic(
        enumerate_value_decodings,
        args=(sample.value_steps,),
        kwargs={"max_candidates": 500},
        rounds=1,
        iterations=1,
    )

    assert curated_reports, "no curated generations to analyse"

    # Correlation between ICL multiplicity rank and captured mass.
    dense_top = 0
    overlaps = []
    copy_masses = []
    for _, report in curated_reports:
        overlaps.append(report.mean_prefix_overlap)
        copy_masses.append(report.mass_on_exact_copies)
        clusters = report.clusters
        max_mult = max(c.icl_multiplicity for c in clusters)
        if report.densest_cluster.icl_multiplicity >= max(1, max_mult // 2):
            dense_top += 1

    t = Table(
        ["statistic", "value"],
        title=(
            "Figure 3: curated-ICL candidate mass clusters on common "
            "ICL value prefixes"
        ),
    )
    t.add_row(["curated generations analysed", len(curated_reports)])
    t.add_row(["mean prefix overlap (mass-weighted)", float(np.mean(overlaps))])
    t.add_row(["mean exact-copy mass", float(np.mean(copy_masses))])
    t.add_row(
        ["share where densest cluster is a most-common ICL value",
         dense_top / len(curated_reports)],
    )
    # One concrete example, like the figure's annotated peaks.
    probe, report = curated_reports[0]
    ex = Table(
        ["ICL value", "multiplicity", "candidate mass", "n candidates"],
        title=f"Example generation (sampled '{probe.predicted_text}')",
    )
    for c in report.clusters[:8]:
        ex.add_row([c.icl_value, c.icl_multiplicity, c.mass, c.n_candidates])
    # The figure itself: candidate mass vs value, truth and densest ICL
    # value marked.
    from repro.utils.histogram import render_histogram

    alts = enumerate_value_decodings(probe.value_steps, max_candidates=500)
    hist = render_histogram(
        alts.values,
        weights=alts.probs,
        bins=14,
        title="Generable-value probability mass (curated ICL)",
        markers={
            "truth": probe.truth,
            "densest ICL": float(report.densest_cluster.icl_value),
        },
    )
    emit(
        "fig3_prefix_clustering",
        t.render() + "\n\n" + ex.render() + "\n\n" + hist,
    )

    assert float(np.mean(overlaps)) > 0.5, "candidates share long ICL prefixes"
    assert dense_top / len(curated_reports) > 0.6, (
        "probability mass peaks near dense ICL values"
    )
    assert 0.0 < float(np.mean(copy_masses)) < 0.9, (
        "clustering without full copying"
    )
