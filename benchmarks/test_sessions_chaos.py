"""Chaos drill for sessions: campaign completion under the fault plan.

The resilience acceptance bar for the sessions layer (ISSUE 6): with the
default seeded :class:`~repro.faults.FaultPlan` injecting latency
spikes, transient worker errors, eviction storms, and queue stalls
underneath a :class:`~repro.serve.resilience.ResilientService`, the
session manager must complete **>= 99%** of every tenant's evaluation
budget, the journal must record each evaluation exactly once (no lost or
duplicated steps), and the recorded histories must be identical across
two runs — faults may shift *when* an evaluation lands, never *what* is
recorded, because the surrogate prediction is advisory and the ground
truth is measured.

This reuses the CLI drill (``repro chaos --sessions``) so the benchmark
and the operator command cannot drift apart.

Run explicitly (deselected from tier-1 by the ``chaos`` marker):

    PYTHONPATH=src python -m pytest benchmarks/test_sessions_chaos.py -m chaos -s
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.cli import _run_sessions_chaos_once
from repro.utils.tables import Table

pytestmark = pytest.mark.chaos

N_REQUESTS = 54  # -> 3 tenants x 9-evaluation budgets


def _args():
    return SimpleNamespace(
        requests=N_REQUESTS,
        seed=7,
        size="SM",
        max_attempts=4,
        no_fallback=False,
    )


def test_campaigns_complete_under_default_fault_plan(emit, tmp_path):
    histories, completion, problems, stats = _run_sessions_chaos_once(
        _args(), tmp_path / "sessions-a.jsonl"
    )

    # -- acceptance: >= 99% campaign completion ------------------------- #
    assert completion >= 0.99, (
        f"campaign completion {completion:.2%} under the default fault "
        "plan is below the 99% acceptance bar"
    )

    # -- journal integrity: no lost or duplicated evaluations ----------- #
    assert not problems, f"event-log integrity: {problems[:3]}"

    # -- determinism: faults never change what is recorded -------------- #
    histories2, completion2, problems2, _ = _run_sessions_chaos_once(
        _args(), tmp_path / "sessions-b.jsonl"
    )
    assert not problems2
    assert completion2 >= 0.99
    assert histories == histories2, (
        "recorded histories differ across two identical chaos runs"
    )

    n_evals = sum(len(indices) for indices, _ in histories.values())
    t = Table(
        ["metric", "value"],
        title=f"sessions chaos ({len(histories)} campaigns under "
        "DEFAULT_FAULT_PLAN)",
    )
    t.add_row(["campaign completion", f"{completion:.2%}"])
    t.add_row(["evaluations recorded", n_evals])
    t.add_row(["service availability", f"{stats.availability:.2%}"])
    t.add_row(["degraded responses", stats.n_degraded])
    t.add_row(["journal integrity problems", len(problems)])
    t.add_row(["deterministic across runs", "yes"])
    emit("sessions_chaos", t.render())
