"""Chaos drill: availability and determinism under the default fault plan.

The resilience acceptance bar (ISSUE): with the default seeded
:class:`~repro.faults.FaultPlan` injecting latency spikes, transient
worker errors, eviction storms, and queue stalls, the resilient serving
stack must hold **>= 99% availability** with **zero unhandled
exceptions**, every degraded response must carry a valid provenance tag,
and the same plan + seed must reproduce identical retry / breaker /
degradation counts across two runs.

Run explicitly (deselected from tier-1 by the ``chaos`` marker):

    PYTHONPATH=src python -m pytest benchmarks/test_serve_chaos.py -m chaos -s
"""

from __future__ import annotations

import pytest

from repro.dataset import generate_dataset
from repro.dataset.splits import disjoint_example_sets
from repro.errors import ServiceError
from repro.faults import DEFAULT_FAULT_PLAN
from repro.serve import (
    PredictionService,
    Request,
    ResilientService,
    RetryPolicy,
)
from repro.utils.tables import Table
from repro.utils.timing import Timer

pytestmark = pytest.mark.chaos

#: Workload shape: unique probes replayed in waves with alternating seeds,
#: so both cache hits and fresh generations flow through the fault sites.
N_REQUESTS = 120
N_UNIQUE = 12
N_ICL = 5

VALID_PROVENANCE = {"result-cache", "gbt-surrogate", "magnitude-prior"}


def _workload() -> list[Request]:
    dataset = generate_dataset("SM")
    sets, queries = disjoint_example_sets(
        dataset, 1, N_ICL, seed=1, n_queries=N_UNIQUE
    )
    examples = [
        (dataset.config(int(r)), float(dataset.runtimes[int(r)]))
        for r in sets[0]
    ]
    requests = []
    for i in range(N_REQUESTS):
        q = queries[i % N_UNIQUE]
        wave = i // N_UNIQUE
        requests.append(
            Request(
                examples=examples,
                query_config=dataset.config(int(q)),
                seed=100 + (i % N_UNIQUE) + (1000 if wave % 2 else 0),
                size="SM",
            )
        )
    return requests


def _drill(workload: list[Request]):
    """One full chaos run; returns (stats, fault counts, responses, errors)."""
    base = PredictionService(fault_plan=DEFAULT_FAULT_PLAN)
    svc = ResilientService(
        base, retry_policy=RetryPolicy(max_attempts=4, seed=1)
    )
    responses, unhandled = [], []
    with base:
        with Timer() as timer:
            for request in workload:
                try:
                    responses.append(svc.submit(request))
                except ServiceError as exc:
                    unhandled.append(exc)
        stats = svc.stats()
    faults = base.faults.stats.snapshot()
    return stats, faults, responses, unhandled, timer.elapsed


def test_availability_under_default_fault_plan(emit):
    workload = _workload()
    stats, faults, responses, unhandled, elapsed = _drill(workload)

    # -- acceptance: >= 99% availability, zero unhandled exceptions ----- #
    assert not unhandled, f"unhandled service errors: {unhandled[:3]}"
    assert len(responses) == N_REQUESTS
    assert stats.n_logical == N_REQUESTS
    assert stats.availability >= 0.99, (
        f"availability {stats.availability:.2%} under the default plan "
        "is below the 99% acceptance bar"
    )

    # -- degraded responses carry correct provenance -------------------- #
    for resp in responses:
        if resp.degraded:
            assert resp.provenance in VALID_PROVENANCE
        else:
            assert resp.provenance == "service"
        assert resp.prediction is not None

    # The plan actually fired: a drill against a quiet service proves
    # nothing about resilience.
    assert sum(faults.values()) > 0, "default fault plan injected nothing"

    # -- determinism: identical counters across two runs ---------------- #
    stats2, faults2, responses2, unhandled2, _ = _drill(workload)
    counters = (
        "n_retries", "n_breaker_trips", "n_degraded",
        "n_unavailable", "n_logical",
    )
    first = {name: getattr(stats, name) for name in counters}
    second = {name: getattr(stats2, name) for name in counters}
    assert first == second, "chaos drill diverged across identical runs"
    assert faults == faults2
    assert not unhandled2
    assert [r.degraded for r in responses] == [r.degraded for r in responses2]
    assert [r.provenance for r in responses] == [
        r.provenance for r in responses2
    ]

    # -- report --------------------------------------------------------- #
    t = Table(
        ["metric", "value"],
        title=f"chaos drill ({N_REQUESTS} requests, default fault plan, "
        f"seed {DEFAULT_FAULT_PLAN.seed})",
    )
    t.add_row(["availability", f"{stats.availability:.2%}"])
    t.add_row(["degraded-serve rate", f"{stats.degraded_rate:.1%}"])
    t.add_row(["retries", stats.n_retries])
    t.add_row(["breaker trips", stats.n_breaker_trips])
    t.add_row(["p95 latency under faults (ms)",
               round(stats.p95_latency_s * 1e3, 1)])
    t.add_row(["injected faults (total)", sum(faults.values())])
    for kind, count in faults.items():
        t.add_row([f"  {kind.replace('_', ' ')}", count])
    t.add_row(["unhandled exceptions", len(unhandled)])
    t.add_row(["wall time (s)", round(elapsed, 2)])
    t.add_row(["deterministic across two runs",
               "yes" if first == second and faults == faults2 else "NO"])
    emit("serve_chaos", t.render())
