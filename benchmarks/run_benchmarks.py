#!/usr/bin/env python
"""Run the gated slow benchmarks and write a ``BENCH_<sha>.json`` report.

CI's bench-regression job entry point:

    python benchmarks/run_benchmarks.py --output BENCH_${GITHUB_SHA}.json

Runs the serve-throughput and prefix-cache benchmark files under ``-m
slow`` (each emits its report into ``benchmarks/results/``), harvests the
machine-independent ratio metrics, and writes the JSON report that
``check_regression.py`` compares against the committed baseline.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import collect_metrics, write_report  # noqa: E402

#: The benchmark files whose emitted ratios the baseline gates.
GATED_BENCHMARKS = (
    "benchmarks/test_serve_throughput.py",
    "benchmarks/test_llm_prefix_cache.py",
    "benchmarks/test_sessions_throughput.py",
    "benchmarks/test_shard_throughput.py",
    "benchmarks/test_loadgen_slo.py",
)


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=None,
        help="report path (default: BENCH_<sha>.json in the repo root)",
    )
    parser.add_argument(
        "--sha", default=None, help="commit id to stamp (default: git HEAD)"
    )
    parser.add_argument(
        "--skip-run",
        action="store_true",
        help="harvest existing benchmarks/results/ without re-running",
    )
    args = parser.parse_args(argv)

    if not args.skip_run:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        cmd = [
            sys.executable, "-m", "pytest", "-q", "-m", "slow",
            *GATED_BENCHMARKS,
        ]
        print("$", " ".join(cmd), flush=True)
        proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
        if proc.returncode != 0:
            print("benchmark run failed; no report written", file=sys.stderr)
            return proc.returncode

    metrics = collect_metrics(REPO_ROOT / "benchmarks" / "results")
    sha = args.sha or _git_sha()
    output = Path(
        args.output or REPO_ROOT / f"BENCH_{(sha or 'local')[:12]}.json"
    )
    write_report(output, metrics, sha=sha)
    print(f"wrote {output}")
    for name, value in sorted(metrics.items()):
        print(f"  {name}: {value:.4g}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
