"""Section IV-C — searching within distributions; needles in a haystack.

Paper's findings:

* using the mean or median of the generable-value distribution is *worse*
  than the sampled value;
* needle fractions (share of values within a relative-error bound):

      bound   LLM sampled   XGBoost     LLM optimal decoder
      50%     ~0.5+         0.95        -
      10%     0.20          0.52        -
      1%      0.03          0.06        (still loses)

* XGBoost strongly outperforms the LLM's optimal capability across all
  error thresholds.

Expected reproduction shape: mean/median decoding no better than
sampling; GBT dominates the sampled LLM at every bound; even the
hypothetical optimal decoder does not close the gap at tight bounds.
"""

import numpy as np
import pytest

from repro.analysis import enumerate_value_decodings, needle_fractions
from repro.analysis.distributions import mode_confidence, summarize_candidates
from repro.analysis.haystack import HaystackReport
from repro.analysis.metrics import relative_errors
from repro.dataset.splits import train_test_split
from repro.gbt import (
    BoostingParams,
    FeatureEncoder,
    GradientBoostingRegressor,
    TargetTransform,
)
from repro.utils.tables import Table

BOUNDS = (0.5, 0.1, 0.01)


@pytest.fixture(scope="module")
def llm_side(grid_probes):
    sampled_errors, truths, haystacks = [], [], []
    mean_errors, median_errors = [], []
    for p in grid_probes:
        if not (p.parsed and p.value_steps):
            continue
        alts = enumerate_value_decodings(p.value_steps, max_candidates=400)
        if not alts.candidates:
            continue
        sampled_errors.append(p.relative_error)
        truths.append(p.truth)
        haystacks.append(alts)
        summary = summarize_candidates(alts.values, alts.probs)
        mean_errors.append(abs(summary.mean - p.truth) / p.truth)
        median_errors.append(abs(summary.median - p.truth) / p.truth)
    return (
        np.asarray(sampled_errors),
        truths,
        haystacks,
        np.asarray(mean_errors),
        np.asarray(median_errors),
    )


@pytest.fixture(scope="module")
def gbt_errors(sm_dataset, xl_dataset):
    errors = []
    for ds in (sm_dataset, xl_dataset):
        train, test = train_test_split(ds, 0.8, seed=1)
        train = train.subset(np.arange(100))  # paper compares 100-sample GBT
        enc = FeatureEncoder(ds.space)
        tt = TargetTransform("log")
        model = GradientBoostingRegressor(
            BoostingParams(n_estimators=150, learning_rate=0.08, max_depth=4,
                           min_samples_leaf=2)
        ).fit(enc.encode_dataset(train), tt.forward(train.runtimes))
        pred = tt.inverse(model.predict(enc.encode_dataset(test)))
        errors.append(relative_errors(test.runtimes, pred))
    return np.concatenate(errors)


def test_sec4c_needles(llm_side, gbt_errors, emit, benchmark):
    sampled_errors, truths, haystacks, mean_errors, median_errors = llm_side
    benchmark.pedantic(
        HaystackReport.build,
        args=(sampled_errors, haystacks, truths),
        kwargs={"bounds": BOUNDS},
        rounds=1,
        iterations=1,
    )
    report = HaystackReport.build(
        sampled_errors, haystacks, truths, bounds=BOUNDS
    )
    gbt = needle_fractions(gbt_errors, bounds=BOUNDS)

    t = Table(
        ["rel-error bound", "LLM sampled", "LLM mean-decode",
         "LLM median-decode", "LLM optimal decoder", "GBT (100 samples)"],
        title="Section IV-C: needles in a haystack",
    )
    mean_frac = needle_fractions(mean_errors, bounds=BOUNDS)
    median_frac = needle_fractions(median_errors, bounds=BOUNDS)
    for b in BOUNDS:
        t.add_row(
            [f"{b:.0%}", report.sampled[b], mean_frac[b], median_frac[b],
             report.optimal[b], gbt[b]]
        )
    stats = Table(["statistic", "value"], title="Distribution decoding")
    stats.add_row(["mean MARE (sampled)", float(np.mean(sampled_errors))])
    stats.add_row(["mean MARE (mean decode)", float(np.mean(mean_errors))])
    stats.add_row(["mean MARE (median decode)", float(np.mean(median_errors))])

    # "logit weights are often higher in the mode closer to the ground
    # truth, but not to such a degree that this method resolves enough
    # ambiguity to improve the model's response."
    top_hits, margins = [], []
    for h, truth in zip(haystacks, truths):
        if len(h.candidates) >= 2:
            is_top, margin = mode_confidence(h, truth)
            top_hits.append(is_top)
            margins.append(margin)
    top_mode_share = float(np.mean(top_hits)) if top_hits else float("nan")
    stats.add_row(["top mode closest to truth (share)", top_mode_share])
    stats.add_row(["mean top-two mode mass margin", float(np.mean(margins))])
    emit("sec4c_needles", t.render() + "\n\n" + stats.render())

    # Often right, but not decisively so.
    assert 0.4 < top_mode_share < 0.95

    # --- shape assertions -------------------------------------------- #
    # GBT dominates the sampled LLM at every bound (the paper's headline).
    for b in BOUNDS:
        assert gbt[b] > report.sampled[b], f"GBT must win at {b:.0%}"
    # The distribution is not centered usefully: mean/median no better
    # than sampling.
    assert float(np.mean(mean_errors)) >= 0.8 * float(np.mean(sampled_errors))
    assert float(np.mean(median_errors)) >= 0.8 * float(np.mean(sampled_errors))
    # Optimal decoding bounds sampling from above.
    for b in BOUNDS:
        assert report.optimal[b] >= report.sampled[b] - 1e-9
    # Tight bound: both techniques struggle ("Neither technique excels
    # beyond the 1% relative error threshold").
    assert report.sampled[0.01] < 0.25
