"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures.  The
expensive inputs — the full experiment grid run, the datasets, the trained
baselines — are computed once per session and shared.  Every benchmark
prints its table (visible with ``pytest -s``) and also writes it to
``benchmarks/results/<name>.txt`` so the output survives pytest's capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import paper_grid, run_grid
from repro.dataset import generate_dataset

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def emit():
    """Print a named report and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


@pytest.fixture(scope="session")
def sm_dataset():
    return generate_dataset("SM")


@pytest.fixture(scope="session")
def xl_dataset():
    return generate_dataset("XL")


@pytest.fixture(scope="session")
def grid_probes():
    """One full Section III-B grid run (both sizes, both selections,
    ICL 1..100, 5 sets, 3 seeds), shared by all LLM-side benchmarks."""
    return run_grid(paper_grid(n_queries=4), workers=None)
