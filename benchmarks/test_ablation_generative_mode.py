"""Ablation (LLAMBO mode 2) — does bucket classification rescue ICL?

The related work describes a *generative surrogate* that predicts N-ary
performance classes instead of regressing a value.  Coarsening the output
space removes the decimal-tokenization pathologies of Section IV-B — but
the underlying failure (parroting context statistics instead of modelling
configuration-performance structure) remains.

Expected shape: the model parses cleanly (single-token labels) and beats
uniform chance through label-frequency parroting, but stays near the
majority-class baseline — far from a usable classifier.
"""

import pytest

from repro.core.generative import GenerativeSurrogate
from repro.dataset import Syr2kTask, generate_dataset
from repro.dataset.splits import disjoint_example_sets
from repro.utils.tables import Table

N_BUCKETS = 5
N_ICL = 30
N_QUERIES = 20


@pytest.fixture(scope="module")
def results():
    out = {}
    for size in ("SM", "XL"):
        dataset = generate_dataset(size)
        surrogate = GenerativeSurrogate(Syr2kTask(size), n_buckets=N_BUCKETS)
        sets, queries = disjoint_example_sets(
            dataset, 1, N_ICL, seed=17, n_queries=N_QUERIES
        )
        out[size] = surrogate.evaluate(dataset, sets[0], queries, seed=1)
    return out


def test_ablation_generative_mode(results, emit, benchmark):
    def _one():
        dataset = generate_dataset("SM", indices=range(400))
        surrogate = GenerativeSurrogate(Syr2kTask("SM"), n_buckets=3)
        sets, queries = disjoint_example_sets(
            dataset, 1, 10, seed=3, n_queries=4
        )
        return surrogate.evaluate(dataset, sets[0], queries, seed=1)

    benchmark.pedantic(_one, rounds=1, iterations=1)

    t = Table(
        ["size", "parse rate", "accuracy", "majority baseline", "chance",
         "mean bucket distance"],
        title=(
            f"Generative surrogate: {N_BUCKETS}-ary bucket classification "
            f"({N_ICL} ICL, {N_QUERIES} queries)"
        ),
    )
    for size, stats in results.items():
        t.add_row(
            [size, stats["parse_rate"], stats["accuracy"],
             stats["majority_baseline"], stats["chance"],
             stats["mean_bucket_distance"]]
        )
    emit("ablation_generative_mode", t.render())

    for size, stats in results.items():
        assert stats["parse_rate"] > 0.8, "single-token labels parse cleanly"
        assert stats["accuracy"] < 0.8, (
            "coarsening does not make the model a usable classifier"
        )
        # Within a sensible band of the trivial baselines.
        assert stats["accuracy"] >= stats["chance"] - 0.1
