#!/usr/bin/env python
"""Compare a benchmark report against the committed baseline.

CI's bench-regression gate:

    python benchmarks/check_regression.py BENCH_<sha>.json

Exits non-zero when any gated metric worsened by more than the tolerance
(default 20% relative) against ``benchmarks/baseline.json``.  The
comparison logic lives in :mod:`repro.bench.regression` and is pinned by
``tests/test_bench_regression.py``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import (  # noqa: E402
    compare,
    load_baseline,
    load_report,
    render_report,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="BENCH_<sha>.json to check")
    parser.add_argument(
        "--baseline",
        default=str(REPO_ROOT / "benchmarks" / "baseline.json"),
        help="committed baseline (default: benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="relative worsening allowed before failing (default: 0.2)",
    )
    args = parser.parse_args(argv)

    current = load_report(args.report)
    baseline = load_baseline(args.baseline)
    regressions = compare(current, baseline, tolerance=args.tolerance)
    print(render_report(current, baseline, regressions, args.tolerance))
    for regression in regressions:
        print(f"REGRESSION {regression.describe()}", file=sys.stderr)
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main())
