"""Ablation (ours) — in-context example *order* changes the prediction.

The induction/recency account of the failure makes a falsifiable
prediction the paper's analysis implies but does not measure: because the
model parrots recency-weighted context statistics, presenting the *same*
examples in a different order should shift the predicted value toward the
examples shown last.  A genuine regressor would be order-invariant.

Expected shape: with examples sorted fastest-first (slow runtimes at the
end, closest to the query) the mean prediction is higher than with the
exact same examples sorted slowest-first.
"""

import numpy as np
import pytest

from repro.core.surrogate import DiscriminativeSurrogate
from repro.dataset import Syr2kTask, generate_dataset
from repro.dataset.splits import disjoint_example_sets
from repro.utils.tables import Table

N_ICL = 20
N_SEEDS = 12


def _mean_prediction(examples, query_config, surrogate):
    values = []
    for seed in range(N_SEEDS):
        pred = surrogate.predict(examples, query_config, seed=seed)
        if pred.parsed and pred.value and pred.value > 0:
            values.append(pred.value)
    return float(np.mean(values)), len(values)


@pytest.fixture(scope="module")
def order_effect():
    dataset = generate_dataset("SM")
    surrogate = DiscriminativeSurrogate(Syr2kTask("SM"))
    sets, queries = disjoint_example_sets(
        dataset, 1, N_ICL, seed=41, n_queries=3
    )
    examples = [
        (dataset.config(int(r)), float(dataset.runtimes[int(r)]))
        for r in sets[0]
    ]
    ascending = sorted(examples, key=lambda e: e[1])   # slow shown last
    descending = ascending[::-1]                        # fast shown last
    rows = []
    for q in queries:
        query_config = dataset.config(int(q))
        up, n_up = _mean_prediction(ascending, query_config, surrogate)
        down, n_down = _mean_prediction(descending, query_config, surrogate)
        rows.append(
            {
                "truth": float(dataset.runtimes[int(q)]),
                "slow_last_mean": up,
                "fast_last_mean": down,
                "n": min(n_up, n_down),
            }
        )
    return rows


def test_ablation_icl_order(order_effect, emit, benchmark):
    def _single():
        dataset = generate_dataset("SM", indices=range(500))
        surrogate = DiscriminativeSurrogate(Syr2kTask("SM"))
        examples = [
            (dataset.config(i), float(dataset.runtimes[i])) for i in range(5)
        ]
        return surrogate.predict(examples, dataset.config(100), seed=0)

    benchmark.pedantic(_single, rounds=1, iterations=1)

    t = Table(
        ["query truth", "mean pred (slow examples last)",
         "mean pred (fast examples last)", "samples"],
        title=(
            f"ICL order ablation: identical {N_ICL} examples, two "
            f"presentation orders, {N_SEEDS} seeds per cell (SM)"
        ),
    )
    for r in order_effect:
        t.add_row(
            [r["truth"], r["slow_last_mean"], r["fast_last_mean"], r["n"]]
        )
    emit("ablation_icl_order", t.render())

    # Recency parroting: predictions drift toward the trailing examples
    # for the majority of queries (a regressor would show no drift).
    drift_up = sum(
        r["slow_last_mean"] > r["fast_last_mean"] for r in order_effect
    )
    assert drift_up >= 2, (
        "predictions should shift toward the most recent examples"
    )
