"""Prefix-reuse speedup: a grid-style sweep must run >=2x faster warm.

The workload mirrors what :func:`repro.core.runner.run_grid` produces: a
block of queries sharing one long ICL prefix (30 examples), each scored
under several sampling seeds.  The warm configuration decodes through the
prepared-prefix snapshot and the engine's lockstep batch kernel; the cold
configuration is the pre-reuse scalar path (``prefix_cache=False``, one
``predict_parts`` per seed).  Predictions must be identical between the
two — the speedup may not cost a single bit.

Run explicitly (deselected from tier-1 by the ``slow`` marker):

    PYTHONPATH=src python -m pytest benchmarks/test_llm_prefix_cache.py -m slow -s
"""

from __future__ import annotations

import pytest

from repro.core.surrogate import DiscriminativeSurrogate
from repro.dataset import Syr2kTask, generate_dataset
from repro.dataset.splits import disjoint_example_sets
from repro.utils.tables import Table
from repro.utils.timing import Timer

pytestmark = pytest.mark.slow

N_ICL = 30
N_QUERIES = 16
SEEDS = tuple(range(5))


def _workload():
    dataset = generate_dataset("SM")
    sets, queries = disjoint_example_sets(
        dataset, 1, N_ICL, seed=3, n_queries=N_QUERIES
    )
    examples = [
        (dataset.config(int(r)), float(dataset.runtimes[int(r)]))
        for r in sets[0]
    ]
    query_configs = [dataset.config(int(q)) for q in queries]
    return examples, query_configs


def _sweep(surrogate: DiscriminativeSurrogate, examples, query_configs,
           batched: bool):
    """One grid sweep; returns (predictions keyed by (query, seed), secs)."""
    preds = {}
    with Timer() as timer:
        for qi, query_config in enumerate(query_configs):
            parts = surrogate.build_parts(examples, query_config)
            if batched:
                for pred in surrogate.predict_parts_batch(parts, list(SEEDS)):
                    preds[(qi, pred.seed)] = pred
            else:
                for seed in SEEDS:
                    preds[(qi, seed)] = surrogate.predict_parts(
                        parts, seed=seed
                    )
    return preds, timer.elapsed


def test_prefix_reuse_doubles_sweep_throughput(emit):
    examples, query_configs = _workload()
    warm = DiscriminativeSurrogate(Syr2kTask("SM"), prefix_cache=True)
    cold = DiscriminativeSurrogate(Syr2kTask("SM"), prefix_cache=False)

    # One untimed pass each: populates the prefix cache and warms numpy
    # internals so the timing compares steady states.
    _sweep(warm, examples, query_configs[:2], batched=True)
    _sweep(cold, examples, query_configs[:2], batched=False)

    warm_secs = cold_secs = float("inf")
    warm_preds = cold_preds = None
    for _ in range(2):  # best-of-2 per configuration
        preds, secs = _sweep(warm, examples, query_configs, batched=True)
        if secs < warm_secs:
            warm_preds, warm_secs = preds, secs
        preds, secs = _sweep(cold, examples, query_configs, batched=False)
        if secs < cold_secs:
            cold_preds, cold_secs = preds, secs

    # Identical predictions, key by key: the determinism contract.
    assert warm_preds.keys() == cold_preds.keys()
    for key, wp in warm_preds.items():
        cp = cold_preds[key]
        assert wp.generated_text == cp.generated_text, key
        assert wp.value == cp.value, key
        assert wp.value_text == cp.value_text, key

    # The warm path actually exercised the snapshot cache.
    assert warm.prefix_cache.hits > 0

    n = len(query_configs) * len(SEEDS)
    speedup = cold_secs / warm_secs
    t = Table(
        ["config", "probes/s", "total (s)"],
        title=f"prefix-cache sweep ({N_QUERIES} queries x {len(SEEDS)} "
        f"seeds, {N_ICL} ICL examples)",
    )
    t.add_row(["prefix cache on", round(n / warm_secs, 1),
               round(warm_secs, 2)])
    t.add_row(["prefix cache off", round(n / cold_secs, 1),
               round(cold_secs, 2)])
    emit("llm_prefix_cache", t.render() + f"\nspeedup: {speedup:.2f}x")

    assert speedup >= 2.0, (
        f"prefix-reuse speedup {speedup:.2f}x below the 2x acceptance bar "
        f"({warm_secs:.2f}s warm vs {cold_secs:.2f}s cold)"
    )
