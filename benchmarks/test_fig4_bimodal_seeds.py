"""Figure 4 — bimodal value distributions, near-identical across seeds.

The paper's figure shows (a) generable-value distributions splitting into
modes keyed by distinct string prefixes (e.g. ``1.7`` vs ``2.7``), and
(b) different sampling seeds producing the same token sets with slightly
altered logit probabilities.

Expected shape: a substantial fraction of generations are prefix-
multimodal; aligned same-prompt different-seed traces have near-perfect
candidate-support overlap and small mean logit deltas.
"""

from collections import defaultdict

import numpy as np
import pytest

from repro.analysis import enumerate_value_decodings
from repro.analysis.distributions import bimodality_split, cross_seed_similarity
from repro.utils.tables import Table


@pytest.fixture(scope="module")
def seed_groups(grid_probes):
    """Group probes by everything except the sampling seed."""
    groups = defaultdict(dict)
    for p in grid_probes:
        s = p.spec
        key = (s.size, s.selection, s.n_icl, s.set_id, p.query_index)
        groups[key][s.seed] = p
    return {k: v for k, v in groups.items() if len(v) >= 2}


def test_fig4_bimodal_seeds(grid_probes, seed_groups, emit, benchmark):
    xl_probes = [
        p for p in grid_probes
        if p.spec.size == "XL" and p.value_steps and p.spec.n_icl >= 5
    ]
    benchmark.pedantic(
        enumerate_value_decodings,
        args=(xl_probes[0].value_steps,),
        rounds=1,
        iterations=1,
    )

    # --- (a) prefix bimodality ---------------------------------------- #
    multimodal = 0
    analysed = 0
    example = None
    for p in xl_probes[:150]:
        alts = enumerate_value_decodings(p.value_steps, max_candidates=300)
        if len(alts.candidates) < 3:
            continue
        modes, is_multi = bimodality_split(alts, prefix_len=3)
        analysed += 1
        multimodal += bool(is_multi)
        if is_multi and example is None:
            example = (p, modes)

    # --- (b) cross-seed similarity ------------------------------------ #
    jaccards, deltas, identical = [], [], 0
    for group in list(seed_groups.values())[:200]:
        probes = list(group.values())
        a, b = probes[0], probes[1]
        if not a.value_steps or not b.value_steps:
            continue
        sim = cross_seed_similarity(a.value_steps, b.value_steps)
        jaccards.append(sim.mean_jaccard)
        deltas.append(sim.mean_abs_logit_delta)
        identical += bool(sim.identical_support)

    # Variance decomposition: the prompt, not the seed, drives predictions.
    from repro.analysis.variance import seed_variance_decomposition

    decomp = seed_variance_decomposition(grid_probes)

    t = Table(["statistic", "value"], title="Figure 4: modes and seeds")
    t.add_row(["generations analysed for modality", analysed])
    t.add_row(["prefix-multimodal share", multimodal / max(analysed, 1)])
    t.add_row(["seed pairs compared", len(jaccards)])
    t.add_row(["mean candidate-support Jaccard", float(np.mean(jaccards))])
    t.add_row(["identical-support share", identical / max(len(jaccards), 1)])
    t.add_row(["mean |logit delta| on shared tokens", float(np.mean(deltas))])
    t.add_row(["prompt share of prediction variance", decomp.prompt_share])
    blocks = [t.render()]
    if example is not None:
        p, modes = example
        ex = Table(
            ["string prefix", "mass", "mean value", "n candidates"],
            title=f"Example bimodal generation (sampled '{p.predicted_text}')",
        )
        for m in modes[:5]:
            ex.add_row([m.prefix, m.mass, m.mean_value, m.n_candidates])
        blocks.append(ex.render())
        # The figure itself: the generable-value probability histogram.
        from repro.utils.histogram import render_histogram

        alts = enumerate_value_decodings(p.value_steps, max_candidates=300)
        blocks.append(
            render_histogram(
                alts.values,
                weights=alts.probs,
                bins=14,
                title="Generable-value distribution (probability mass)",
                markers={"truth": p.truth, "sampled": p.predicted or p.truth},
            )
        )
    emit("fig4_bimodal_seeds", "\n\n".join(blocks))

    assert analysed > 20
    assert multimodal / analysed > 0.3, "prefix modes commonly arise"
    assert float(np.mean(jaccards)) > 0.85, (
        "seeds produce near-identical token sets"
    )
    assert float(np.mean(deltas)) < 0.5, "...with only small logit changes"
    assert decomp.prompt_share > 0.5, (
        "knowledge expression is primarily based on the prompt rather than "
        "a randomizable component of the model"
    )
