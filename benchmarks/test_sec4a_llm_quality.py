"""Section IV-A — quality of LLM predictions over the full grid.

Paper's headline statistics:

* best R^2 0.4643 (SM, 50 ICL); R^2 non-negative in ~1/4 of experiments;
* mean R^2 -6.643 with standard deviation 22.766 (wildly unreliable);
* CLT-aggregated MARE 0.3593 (std 0.2474), MSRE 0.1021 (std 3.2609);
* prediction error does not improve (often worsens) with more ICL;
* slightly over 10% of generated values verbatim-copy an ICL value.

Expected reproduction shape: best R^2 well below the GBT baseline's,
mostly-negative R^2 distribution with a minority non-negative share,
MARE a third-ish on average, error flat/increasing past ~10 examples,
and a low-but-nonzero copy rate.
"""

import numpy as np
import pytest

from repro.core import build_report
from repro.utils.tables import Table


@pytest.fixture(scope="module")
def report(grid_probes):
    return build_report(grid_probes)


def test_sec4a_llm_quality(report, grid_probes, emit, benchmark):
    benchmark.pedantic(
        build_report, args=(grid_probes,), rounds=1, iterations=1
    )

    t = Table(["statistic", "paper", "reproduced"],
              title="Section IV-A: LLM prediction quality")
    t.add_row(["experiments", 84, len(report.cells)])
    t.add_row(["generations", 284, len(grid_probes)])
    t.add_row(["best R2", 0.4643, report.best_r2])
    t.add_row(["mean R2", -6.643, report.mean_r2])
    t.add_row(["std R2", 22.766, report.std_r2])
    t.add_row(["non-negative R2 share", 0.25, report.frac_nonnegative_r2])
    t.add_row(["mean MARE", 0.3593, report.mare.mean])
    t.add_row(["std MARE", 0.2474, report.mare.std])
    t.add_row(["mean MSRE", 0.1021, report.msre.mean])
    t.add_row(["std MSRE", 3.2609, report.msre.std])
    t.add_row(["ICL copy rate", "~0.10+", report.copy_rate])
    t.add_row(["parse rate", None, report.parse_rate])

    icl = Table(["n ICL examples", "mean MARE"],
                title="Error vs. amount of in-context learning")
    for n, v in report.per_icl_mare.items():
        icl.add_row([n, v])
    emit("sec4a_llm_quality", t.render() + "\n\n" + icl.render())

    # --- shape assertions -------------------------------------------- #
    assert report.mean_r2 < -1.0, "R2 is strongly negative on average"
    assert report.std_r2 > 5.0, "R2 varies wildly across experiments"
    assert 0.05 < report.frac_nonnegative_r2 < 0.5, "~a quarter non-negative"
    assert report.best_r2 < 0.85, "even the best experiment is mediocre"
    assert 0.15 < report.mare.mean < 0.6, "MARE around a third"
    assert 0.05 < report.copy_rate < 0.4, "copies exist but are a minority"
    assert report.parse_rate > 0.95

    # Error does not keep improving with context: the large-ICL error is
    # no better than the mid-ICL error.
    mares = report.per_icl_mare
    assert mares[100] > 0.5 * mares[10], (
        "more ICL does not continue to help (paper: error often increases)"
    )
