"""Figure 2 — GBT runtime predictions with the full training set.

The paper's figure is a predicted-vs-true scatter at 8519 training
examples showing tight calibration across the whole runtime domain for
both sizes.  We regenerate it as a decile calibration table: test points
are bucketed by true runtime and the mean prediction per bucket is
reported; a faithful model keeps every bucket's mean ratio near 1.
"""

import numpy as np
import pytest

from repro.dataset.splits import train_test_split
from repro.gbt import (
    BoostingParams,
    FeatureEncoder,
    GradientBoostingRegressor,
    TargetTransform,
)
from repro.utils.tables import Table


def _calibration(dataset):
    train, test = train_test_split(dataset, 0.8, seed=1)
    enc = FeatureEncoder(dataset.space)
    tt = TargetTransform("log")
    model = GradientBoostingRegressor(
        BoostingParams(
            n_estimators=250, learning_rate=0.1, max_depth=6,
            min_samples_leaf=2,
        )
    ).fit(enc.encode_dataset(train), tt.forward(train.runtimes))
    pred = tt.inverse(model.predict(enc.encode_dataset(test)))
    true = test.runtimes
    edges = np.quantile(true, np.linspace(0, 1, 11))
    rows = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (true >= lo) & (true <= hi)
        rows.append(
            (
                float(lo),
                float(hi),
                float(true[mask].mean()),
                float(pred[mask].mean()),
                float(pred[mask].mean() / true[mask].mean()),
                int(mask.sum()),
            )
        )
    return rows, len(train)


@pytest.fixture(scope="module")
def calibration(sm_dataset, xl_dataset):
    return {"SM": _calibration(sm_dataset), "XL": _calibration(xl_dataset)}


def test_fig2_gbt_scatter(calibration, emit, benchmark, sm_dataset):
    benchmark.pedantic(
        _calibration, args=(sm_dataset,), rounds=1, iterations=1
    )

    blocks = []
    for size, (rows, n_train) in calibration.items():
        t = Table(
            ["true decile lo", "true decile hi", "mean true", "mean pred",
             "pred/true", "n"],
            title=(
                f"Figure 2 ({size}): GBT calibration by true-runtime "
                f"decile, {n_train} training examples"
            ),
        )
        for row in rows:
            t.add_row(list(row))
        blocks.append(t.render())
    emit("fig2_gbt_scatter", "\n\n".join(blocks))

    # Shape: calibrated across the whole domain (paper: tight diagonal).
    for size, (rows, _) in calibration.items():
        ratios = [r[4] for r in rows]
        tol = 0.25 if size == "SM" else 0.10
        assert all(abs(r - 1.0) < tol for r in ratios), (
            f"{size} calibration drifts: {ratios}"
        )
