"""Sharded serving: determinism across shard counts, scale-out speedup.

Two acceptance bars for ``repro.serve.shard``:

* **Determinism** — the same workload must produce bit-identical
  predictions whether it runs in-process (``shards=0``) or behind 1 or 4
  worker replicas.  Routing and transport may change *where* a prompt is
  served, never *what* it answers (runs on any host).
* **Scale-out** — on a host with >= 4 cores, 4 shards must at least
  double requests/sec over the single-process thread backend on a
  generation-bound workload (every request unique, so caches cannot
  help).  Skipped on smaller hosts: with fewer cores than shards the
  replicas time-slice one CPU and the comparison measures the scheduler,
  not the architecture.

Run explicitly (deselected from tier-1 by the ``slow`` marker):

    PYTHONPATH=src python -m pytest benchmarks/test_shard_throughput.py -m slow -s
"""

from __future__ import annotations

import os

import pytest

from repro.dataset import generate_dataset
from repro.dataset.splits import disjoint_example_sets
from repro.serve import Request, make_service
from repro.utils.tables import Table
from repro.utils.timing import Timer

pytestmark = pytest.mark.slow

N_ICL = 5
N_QUERIES = 8


def _requests(n: int, seed_base: int) -> list[Request]:
    """``n`` unique requests (distinct seeds defeat the result cache)."""
    dataset = generate_dataset("SM")
    sets, queries = disjoint_example_sets(
        dataset, 1, N_ICL, seed=1, n_queries=N_QUERIES
    )
    examples = [
        (dataset.config(int(r)), float(dataset.runtimes[int(r)]))
        for r in sets[0]
    ]
    return [
        Request(
            examples=examples,
            query_config=dataset.config(int(queries[i % N_QUERIES])),
            seed=seed_base + i,
            size="SM",
        )
        for i in range(n)
    ]


def _canonical(responses) -> list[str]:
    return [repr(r.prediction) for r in responses]


def test_bit_identical_across_shard_counts():
    workload = _requests(16, seed_base=100)
    expect = None
    for shards in (0, 1, 4):
        with make_service(
            shards=shards, max_batch_size=8, max_wait_s=0.002
        ) as service:
            got = _canonical(service.submit_many(workload))
        if expect is None:
            expect = got
        else:
            assert got == expect, f"shards={shards} diverged from shards=0"


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="scale-out measurement needs >= 4 cores",
)
def test_four_shards_double_throughput(emit):
    workload = _requests(48, seed_base=1000)
    warmup = _requests(8, seed_base=9000)

    def run(shards: int):
        with make_service(
            shards=shards, max_batch_size=8, max_wait_s=0.002
        ) as service:
            # Boot the replicas and warm the per-size surrogate before
            # the timed window; warmup seeds are disjoint so no timed
            # request can hit the result cache.
            service.submit_many(warmup)
            with Timer() as timer:
                responses = service.submit_many(workload)
        return responses, len(workload) / max(timer.elapsed, 1e-9)

    single_resps, single_rps = run(shards=0)
    shard_resps, shard_rps = run(shards=4)

    # Scale-out must not change results (the determinism contract).
    assert _canonical(shard_resps) == _canonical(single_resps)

    speedup = shard_rps / single_rps
    t = Table(
        ["config", "req/s"],
        title=f"shard throughput ({len(workload)} unique requests)",
    )
    t.add_row(["single process", round(single_rps, 1)])
    t.add_row(["4 shards", round(shard_rps, 1)])
    emit("shard_throughput", t.render() + f"\nspeedup: {speedup:.1f}x")

    assert speedup >= 2.0, (
        f"4-shard speedup {speedup:.2f}x below the 2x acceptance bar "
        f"({shard_rps:.0f} vs {single_rps:.0f} req/s)"
    )
