"""Ablation (ours) — autotuner comparison on the syr2k task.

The paper motivates the whole study with autotuning: intelligent search
should find near-optimal configurations in tens of evaluations where the
10,648-point space makes exhaustion impractical.  This benchmark runs the
classic tuners (random, hill climbing, GP-BO) and the LLAMBO-style LLM
candidate sampler under an equal evaluation budget.

Expected shape: the model-based tuner (GP-BO) reaches the lowest runtime;
the LLM candidate sampler degenerates toward random search because most
of its proposals fail to parse into complete configurations — consistent
with the paper's format-deviation findings.
"""

import pytest

from repro.dataset.perfmodel import Syr2kPerformanceModel
from repro.dataset.syr2k import Syr2kTask, syr2k_space
from repro.tuning import (
    BayesianOptTuner,
    HillClimbTuner,
    LLMCandidateTuner,
    RandomSearchTuner,
    compare_tuners,
)
from repro.utils.tables import Table

BUDGET = 50
REPETITIONS = 3


@pytest.fixture(scope="module")
def comparison():
    task = Syr2kTask("SM")
    space = syr2k_space()
    model = Syr2kPerformanceModel(task)
    llm = LLMCandidateTuner(space, task, seed=11)
    tuners = [
        RandomSearchTuner(space, seed=11),
        HillClimbTuner(space, seed=11),
        BayesianOptTuner(space, seed=11),
        llm,
    ]
    cmp = compare_tuners(tuners, model, budget=BUDGET, repetitions=REPETITIONS)
    return cmp, llm


def test_ablation_tuners(comparison, emit, benchmark):
    cmp, llm = comparison

    def _one_random_run():
        space = syr2k_space()
        model = Syr2kPerformanceModel(Syr2kTask("SM"))
        return compare_tuners(
            [RandomSearchTuner(space, seed=3)], model, budget=20,
            repetitions=1,
        )

    benchmark.pedantic(_one_random_run, rounds=1, iterations=1)

    t = Table(
        ["tuner", "mean best runtime", "relative regret",
         "best@10 evals", "best@50 evals"],
        title=(
            f"Autotuner comparison on syr2k SM "
            f"(budget {BUDGET}, {REPETITIONS} reps, optimum "
            f"{cmp.global_optimum:.6f})"
        ),
    )
    for name, best in cmp.ranking():
        curve = cmp.mean_curve(name)
        t.add_row(
            [name, best, cmp.mean_regret(name), float(curve[9]),
             float(curve[-1])]
        )
    extra = Table(["statistic", "value"], title="LLM candidate sampler")
    extra.add_row(["LM proposals", llm.n_proposals])
    extra.add_row(["parse/repeat fallback rate", llm.fallback_rate])
    emit("ablation_tuners", t.render() + "\n\n" + extra.render())

    # Shape: the model-based tuner wins; everyone beats doing nothing.
    ranks = dict(cmp.ranking())
    assert ranks["gp-bo"] <= ranks["random"] * 1.02, "GP-BO >= random search"
    for name, best in ranks.items():
        assert best < 3 * cmp.global_optimum, f"{name} finds a decent config"
    # The LLM tuner's proposals usually fail to parse (format deviations).
    assert llm.fallback_rate > 0.5
