"""Load-generation SLO conformance: the bench-lane twin of the CI soak.

Drives a short seeded open-loop Poisson schedule against the in-process
service and gates on the default :class:`~repro.loadgen.slo.SLOPolicy`.
Two artifacts feed the regression machinery:

* ``benchmarks/results/loadtest_report.json`` — the canonical SLO
  report; ``repro.bench.regression`` harvests its ``goodput`` as the
  (record-only) ``loadtest_goodput`` metric.
* ``benchmarks/results/loadtest_slo.txt`` — the human-readable table
  for the job log.

The target stays in-process (``shards=0``): the bench lane gates on the
serving stack's conformance under load, and shard scale-out already has
its own core-count-guarded benchmark.  Absolute latencies vary with the
runner, which is why only the dimensionless goodput is harvested.

Run explicitly (deselected from tier-1 by the ``slow`` marker):

    PYTHONPATH=src python -m pytest benchmarks/test_loadgen_slo.py -m slow -s
"""

from __future__ import annotations

import pytest

from repro.loadgen import DEFAULT_SLO, LoadDriver, LoadSpec, WorkloadMix
from repro.serve import PredictionService

from conftest import RESULTS_DIR

pytestmark = pytest.mark.slow

SPEC = LoadSpec(
    arrival="poisson",
    rps=120.0,
    duration_s=3.0,
    seed=7,
    mode="open",
    mix=WorkloadMix(size="SM", n_icl=4, n_unique=8, n_tenants=3),
)


def test_loadtest_meets_default_slo(emit):
    driver = LoadDriver(SPEC)
    with PredictionService() as service:
        report = driver.run(service)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "loadtest_report.json").write_text(report.to_json())
    emit("loadtest_slo", report.render(title="loadtest SLO conformance"))

    violations = report.check(DEFAULT_SLO)
    assert not violations, "; ".join(v.describe() for v in violations)

    # The schedule layer must be reproducible on any host: a second
    # driver over the same spec replays bit-identical traffic.
    twin = LoadDriver(SPEC)
    assert driver.schedule().tobytes() == twin.schedule().tobytes()
    from repro.loadgen import schedule_digest, workload_digest

    assert report.schedule_digest == schedule_digest(twin.schedule())
    assert report.workload_digest == workload_digest(twin.workload())
