"""Table I — XGBoost(-equivalent) prediction metrics.

Paper's rows (R^2 / MARE / MSRE for SM and XL at 100, 500, 1000, 5000 and
8519 training examples):

    100   -> SM 0.44 / 0.17 / 0.073   XL 0.69 / 0.13 / 0.058
    8519  -> SM 0.80 / 0.08 / 0.013   XL 0.98 / 0.04 / 0.003

Expected reproduction shape: R^2 increases monotonically with training
data for both sizes; XL is uniformly easier than SM; SM saturates around
0.8 and XL near 1.0.
"""

import numpy as np
import pytest

from repro.analysis import score_predictions
from repro.dataset.splits import train_test_split
from repro.gbt import (
    BoostingParams,
    FeatureEncoder,
    GradientBoostingRegressor,
    RandomizedSearch,
    TargetTransform,
)
from repro.utils.tables import Table

TRAIN_SIZES = (100, 500, 1000, 5000, None)  # None -> full 80% train split


def _metrics_for(dataset, n_train, search_iterations):
    train, test = train_test_split(dataset, 0.8, seed=1)
    if n_train is not None:
        train = train.subset(np.arange(n_train))
    enc = FeatureEncoder(dataset.space)
    tt = TargetTransform("log")
    x_tr, y_tr = enc.encode_dataset(train), tt.forward(train.runtimes)
    if search_iterations > 0 and len(train) <= 1000:
        search = RandomizedSearch(n_iterations=search_iterations, seed=0)
        search.fit(x_tr, y_tr)
        model = search.result.model
    else:
        model = GradientBoostingRegressor(
            BoostingParams(
                n_estimators=250, learning_rate=0.1, max_depth=6,
                min_samples_leaf=2,
            )
        ).fit(x_tr, y_tr)
    pred = tt.inverse(model.predict(enc.encode_dataset(test)))
    return score_predictions(test.runtimes, pred), len(train)


@pytest.fixture(scope="module")
def table1(sm_dataset, xl_dataset):
    rows = {}
    for n in TRAIN_SIZES:
        sm, n_sm = _metrics_for(sm_dataset, n, search_iterations=6)
        xl, _ = _metrics_for(xl_dataset, n, search_iterations=6)
        rows[n_sm if n is None else n] = (sm, xl)
    return rows


def test_table1_gbt_metrics(table1, emit, benchmark, sm_dataset):
    # Benchmark the unit of work: one 500-example fit+score.
    benchmark.pedantic(
        _metrics_for, args=(sm_dataset, 500, 0), rounds=1, iterations=1
    )

    t = Table(
        ["Training Examples", "R2 SM", "R2 XL", "MARE SM", "MARE XL",
         "MSRE SM", "MSRE XL"],
        title="Table I: GBT (XGBoost stand-in) prediction metrics",
    )
    for n, (sm, xl) in sorted(table1.items()):
        t.add_row([n, sm.r2, xl.r2, sm.mare, xl.mare, sm.msre, xl.msre])
    emit("table1_gbt_metrics", t.render())

    ns = sorted(table1)
    sm_r2 = [table1[n][0].r2 for n in ns]
    xl_r2 = [table1[n][1].r2 for n in ns]
    # Shape assertions mirroring the paper's trends:
    assert all(b >= a - 0.05 for a, b in zip(sm_r2, sm_r2[1:])), "SM R2 rises"
    assert all(b >= a - 0.05 for a, b in zip(xl_r2, xl_r2[1:])), "XL R2 rises"
    assert all(x > s for s, x in zip(sm_r2[1:], xl_r2[1:])), "XL easier than SM"
    assert sm_r2[-1] > 0.7, "SM saturates around the paper's 0.80"
    assert xl_r2[-1] > 0.95, "XL saturates around the paper's 0.98"
    assert table1[ns[-1]][0].mare < 0.12, "full-train SM MARE ~0.08"
    assert table1[ns[-1]][1].mare < 0.06, "full-train XL MARE ~0.04"
