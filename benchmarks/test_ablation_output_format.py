"""Ablation (Section V-B) — decimal vs. scientific value serialization.

The paper argues a stable output format could help in principle, "however,
scientific notation often makes the prefixes of values *less* similar,
which our results indicate may *harm* the model's ability to generate
useful answers."  This benchmark measures that prediction directly by
running the same prompts with both serializations.

Expected shape: the decimal format's error stays in the Section IV-A
band; the scientific format's error explodes (mantissa-only generations
drop the exponent, costing orders of magnitude on SM) and exact copying
collapses.
"""

import numpy as np
import pytest

from repro.core.surrogate import DiscriminativeSurrogate
from repro.dataset import Syr2kTask, generate_dataset
from repro.dataset.splits import disjoint_example_sets
from repro.utils.tables import Table

N_ICL = 20
N_PROBES = 24


def _run_style(style: str, dataset, task):
    surrogate = DiscriminativeSurrogate(task, value_style=style)
    sets, queries = disjoint_example_sets(
        dataset, 1, N_ICL, seed=21, n_queries=N_PROBES
    )
    examples = [
        (dataset.config(int(r)), float(dataset.runtimes[int(r)]))
        for r in sets[0]
    ]
    errors, copies, parsed = [], 0, 0
    for i, q in enumerate(queries):
        pred = surrogate.predict(examples, dataset.config(int(q)), seed=i)
        if pred.parsed and pred.value and pred.value > 0:
            parsed += 1
            truth = float(dataset.runtimes[int(q)])
            errors.append(abs(pred.value - truth) / truth)
            copies += pred.exact_copy
    return {
        "parse_rate": parsed / N_PROBES,
        "copy_rate": copies / N_PROBES,
        "median_rel_error": float(np.median(errors)) if errors else float("inf"),
        "max_rel_error": float(np.max(errors)) if errors else float("inf"),
    }


@pytest.fixture(scope="module")
def styles():
    dataset = generate_dataset("SM")
    task = Syr2kTask("SM")
    return {
        style: _run_style(style, dataset, task)
        for style in ("decimal", "scientific")
    }


def test_ablation_output_format(styles, emit, benchmark):
    benchmark.pedantic(
        _run_style,
        args=("decimal", generate_dataset("SM"), Syr2kTask("SM")),
        rounds=1,
        iterations=1,
    )

    t = Table(
        ["value format", "parse rate", "copy rate", "median rel error",
         "max rel error"],
        title=(
            "Section V-B ablation: decimal vs scientific value "
            f"serialization (SM, {N_ICL} ICL, {N_PROBES} probes)"
        ),
    )
    for style, stats in styles.items():
        t.add_row(
            [style, stats["parse_rate"], stats["copy_rate"],
             stats["median_rel_error"], stats["max_rel_error"]]
        )
    emit("ablation_output_format", t.render())

    dec, sci = styles["decimal"], styles["scientific"]
    assert dec["median_rel_error"] < 1.0, "decimal behaves as in IV-A"
    assert sci["median_rel_error"] > 5 * dec["median_rel_error"], (
        "scientific notation harms the model (the paper's V-B prediction)"
    )
    assert sci["max_rel_error"] > 50, "mantissa-only outputs lose the exponent"
