"""Serving-layer throughput: requests/sec with caches on vs. off.

The acceptance bar for the serving layer: on a repeated-prompt workload
(the shape paper grids and autotuner loops actually produce), the
two-level cache must at least double requests/sec.  In practice result
hits skip generation entirely, so the observed speedup is far above 2x;
the assertion leaves headroom for noisy CI wall clocks.

Run explicitly (deselected from tier-1 by the ``slow`` marker):

    PYTHONPATH=src python -m pytest benchmarks/test_serve_throughput.py -m slow -s
"""

from __future__ import annotations

import pytest

from repro.dataset import generate_dataset
from repro.dataset.splits import disjoint_example_sets
from repro.serve import PredictionService, Request
from repro.utils.tables import Table
from repro.utils.timing import Timer

pytestmark = pytest.mark.slow

#: Workload shape: each unique probe is replayed this many times.
N_UNIQUE = 10
N_REPEATS = 8
N_ICL = 5


def _workload() -> list[Request]:
    dataset = generate_dataset("SM")
    sets, queries = disjoint_example_sets(
        dataset, 1, N_ICL, seed=1, n_queries=N_UNIQUE
    )
    examples = [
        (dataset.config(int(r)), float(dataset.runtimes[int(r)]))
        for r in sets[0]
    ]
    unique = [
        Request(
            examples=examples,
            query_config=dataset.config(int(q)),
            seed=100 + i,
            size="SM",
        )
        for i, q in enumerate(queries)
    ]
    # Interleaved replay: revisits are spread out, not back-to-back.
    return unique * N_REPEATS


def _run(workload: list[Request], caches: bool):
    with PredictionService(
        max_batch_size=8,
        max_wait_s=0.002,
        enable_prepare_cache=caches,
        enable_result_cache=caches,
    ) as service:
        with Timer() as timer:
            responses = service.submit_many(workload)
        stats = service.stats()
    rps = len(workload) / max(timer.elapsed, 1e-9)
    return responses, stats, rps


def test_caching_doubles_throughput(emit):
    workload = _workload()
    warm_resps, warm_stats, warm_rps = _run(workload, caches=True)
    cold_resps, cold_stats, cold_rps = _run(workload, caches=False)

    # Caching must not change results (the determinism contract).
    assert [r.value for r in warm_resps] == [r.value for r in cold_resps]
    assert warm_stats.n_completed == cold_stats.n_completed == len(workload)

    # The repeated fraction of the workload hits the result cache.
    expected_hit_rate = 1.0 - 1.0 / N_REPEATS
    assert warm_stats.result_hit_rate == pytest.approx(expected_hit_rate)
    assert cold_stats.result_hit_rate == 0.0

    speedup = warm_rps / cold_rps
    t = Table(
        ["config", "req/s", "p95 latency (ms)", "result hit rate"],
        title=f"serve throughput ({len(workload)} requests, "
        f"{N_UNIQUE} unique x {N_REPEATS})",
    )
    t.add_row([
        "caches on", round(warm_rps, 1),
        round(warm_stats.p95_latency_s * 1e3, 1),
        f"{warm_stats.result_hit_rate:.0%}",
    ])
    t.add_row([
        "caches off", round(cold_rps, 1),
        round(cold_stats.p95_latency_s * 1e3, 1),
        f"{cold_stats.result_hit_rate:.0%}",
    ])
    emit("serve_throughput", t.render() + f"\nspeedup: {speedup:.1f}x")

    assert speedup >= 2.0, (
        f"caching speedup {speedup:.2f}x below the 2x acceptance bar "
        f"({warm_rps:.0f} vs {cold_rps:.0f} req/s)"
    )


def test_tracing_overhead_under_five_percent(emit):
    """Enabling span tracing must cost <5% throughput on this workload.

    Best-of-3 per configuration so scheduler jitter does not masquerade
    as tracing cost; the off path is not measured against a bar here
    because it is structurally free (the global tracer stays the
    disabled singleton and every instrumented site short-circuits).
    """
    from repro.obs import Tracer, use_tracer

    workload = _workload()
    _run(workload, caches=True)  # warm the per-size surrogate cache

    def best_rps(tracer=None) -> float:
        best = 0.0
        for _ in range(3):
            if tracer is None:
                _, _, rps = _run(workload, caches=True)
            else:
                tracer.clear()
                with use_tracer(tracer):
                    _, _, rps = _run(workload, caches=True)
            best = max(best, rps)
        return best

    plain_rps = best_rps()
    tracer = Tracer()
    traced_rps = best_rps(tracer)

    # The trace must actually have been recorded (one request root per
    # submitted request), or the comparison measures nothing.
    roots = [s for s in tracer.spans() if s.name == "serve.request"]
    assert len(roots) == len(workload)

    overhead = 1.0 - traced_rps / plain_rps
    emit(
        "serve_tracing_overhead",
        f"tracing off: {plain_rps:.1f} req/s\n"
        f"tracing on:  {traced_rps:.1f} req/s\n"
        f"overhead:    {overhead:.1%} ({len(tracer)} spans collected)",
    )
    assert overhead < 0.05, (
        f"tracing overhead {overhead:.1%} exceeds the 5% bar "
        f"({traced_rps:.0f} vs {plain_rps:.0f} req/s)"
    )
