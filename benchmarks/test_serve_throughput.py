"""Serving-layer throughput: requests/sec with caches on vs. off.

The acceptance bar for the serving layer: on a repeated-prompt workload
(the shape paper grids and autotuner loops actually produce), the
two-level cache must at least double requests/sec.  In practice result
hits skip generation entirely, so the observed speedup is far above 2x;
the assertion leaves headroom for noisy CI wall clocks.

Run explicitly (deselected from tier-1 by the ``slow`` marker):

    PYTHONPATH=src python -m pytest benchmarks/test_serve_throughput.py -m slow -s
"""

from __future__ import annotations

import pytest

from repro.dataset import generate_dataset
from repro.dataset.splits import disjoint_example_sets
from repro.serve import PredictionService, Request
from repro.utils.tables import Table
from repro.utils.timing import Timer

pytestmark = pytest.mark.slow

#: Workload shape: each unique probe is replayed this many times.
N_UNIQUE = 10
N_REPEATS = 8
N_ICL = 5


def _workload() -> list[Request]:
    dataset = generate_dataset("SM")
    sets, queries = disjoint_example_sets(
        dataset, 1, N_ICL, seed=1, n_queries=N_UNIQUE
    )
    examples = [
        (dataset.config(int(r)), float(dataset.runtimes[int(r)]))
        for r in sets[0]
    ]
    unique = [
        Request(
            examples=examples,
            query_config=dataset.config(int(q)),
            seed=100 + i,
            size="SM",
        )
        for i, q in enumerate(queries)
    ]
    # Interleaved replay: revisits are spread out, not back-to-back.
    return unique * N_REPEATS


def _run(workload: list[Request], caches: bool, sampler=None):
    with PredictionService(
        max_batch_size=8,
        max_wait_s=0.002,
        enable_prepare_cache=caches,
        enable_result_cache=caches,
    ) as service:
        if sampler is not None:
            from repro.obs import collect_service_metrics

            sampler.add_collector(
                "service",
                lambda reg: collect_service_metrics(service, registry=reg),
            )
            sampler.start()
        try:
            with Timer() as timer:
                responses = service.submit_many(workload)
            stats = service.stats()
        finally:
            if sampler is not None:
                sampler.stop(final_sample=False)
    rps = len(workload) / max(timer.elapsed, 1e-9)
    return responses, stats, rps


def test_caching_doubles_throughput(emit):
    workload = _workload()
    warm_resps, warm_stats, warm_rps = _run(workload, caches=True)
    cold_resps, cold_stats, cold_rps = _run(workload, caches=False)

    # Caching must not change results (the determinism contract).
    assert [r.value for r in warm_resps] == [r.value for r in cold_resps]
    assert warm_stats.n_completed == cold_stats.n_completed == len(workload)

    # The repeated fraction of the workload hits the result cache.
    expected_hit_rate = 1.0 - 1.0 / N_REPEATS
    assert warm_stats.result_hit_rate == pytest.approx(expected_hit_rate)
    assert cold_stats.result_hit_rate == 0.0

    speedup = warm_rps / cold_rps
    t = Table(
        ["config", "req/s", "p95 latency (ms)", "result hit rate"],
        title=f"serve throughput ({len(workload)} requests, "
        f"{N_UNIQUE} unique x {N_REPEATS})",
    )
    t.add_row([
        "caches on", round(warm_rps, 1),
        round(warm_stats.p95_latency_s * 1e3, 1),
        f"{warm_stats.result_hit_rate:.0%}",
    ])
    t.add_row([
        "caches off", round(cold_rps, 1),
        round(cold_stats.p95_latency_s * 1e3, 1),
        f"{cold_stats.result_hit_rate:.0%}",
    ])
    emit("serve_throughput", t.render() + f"\nspeedup: {speedup:.1f}x")

    assert speedup >= 2.0, (
        f"caching speedup {speedup:.2f}x below the 2x acceptance bar "
        f"({warm_rps:.0f} vs {cold_rps:.0f} req/s)"
    )


def test_tracing_overhead_under_five_percent(emit):
    """Span tracing + telemetry sampling must cost <5% process CPU.

    The traced side runs the full observability pipeline: a live tracer
    on every instrumented site *and* a :class:`TelemetrySampler` scraping
    service metrics on a 50ms cadence — the configuration a
    ``loadtest --trace --telemetry`` run or the nightly soak actually
    pays for.  ``time.process_time`` charges the sampler thread's scrape
    CPU to the process, so the bar covers both costs.

    Tracing cost is pure CPU work (timestamping, tuple appends), so it is
    measured on the process-CPU clock, not wall time: on shared CI runners
    adjacent-trial wall throughput swings by +/-25%, which cannot
    discriminate a 5% bar no matter how trials are averaged.
    ``time.process_time`` sums CPU across all threads and is blind to the
    scheduling gaps that dominate wall-clock noise.  Per side we take the
    **minimum** CPU over interleaved trials — external interference only
    ever adds CPU (cache eviction, context-switch churn), never removes
    it, so the minimum converges on the intrinsic cost of each
    configuration.  Congestion can outlast a fixed trial budget, so the
    pair loop escalates: it stops as soon as the running minimums prove
    the bound (more trials can only lower a minimum, so early exit is
    sound) and fails only if a generous pair cap expires without either
    side ever getting a clean trial.  Trial order alternates per pair so
    monotone drift cannot systematically penalize one side, and a GC
    collection levels allocator state before every timed trial.  The off
    path is not measured against a bar here because it is structurally
    free (the global tracer stays the disabled singleton and every
    instrumented site short-circuits).
    """
    import gc
    import time

    from repro.obs import TelemetrySampler, Tracer, use_tracer

    workload = _workload() * 6
    _run(workload, caches=True)  # warm the per-size surrogate cache

    tracer = Tracer()
    n_telemetry_samples = 0

    def plain_trial() -> float:
        gc.collect()
        t0 = time.process_time()
        _run(workload, caches=True)
        return time.process_time() - t0

    def traced_trial() -> float:
        nonlocal n_telemetry_samples
        tracer.clear()
        # Fresh sampler per trial: collectors close over the trial's
        # service, and its scrape thread must die with the trial.
        sampler = TelemetrySampler(0.05)
        gc.collect()
        with use_tracer(tracer):
            t0 = time.process_time()
            _run(workload, caches=True, sampler=sampler)
            elapsed = time.process_time() - t0
        n_telemetry_samples = len(sampler.records())
        return elapsed

    min_pairs, max_pairs = 4, 40
    plain_cpu = traced_cpu = float("inf")
    for pair in range(max_pairs):
        first, second = (
            (plain_trial, traced_trial) if pair % 2 == 0
            else (traced_trial, plain_trial)
        )
        a, b = first(), second()
        plain, traced = (a, b) if pair % 2 == 0 else (b, a)
        plain_cpu = min(plain_cpu, plain)
        traced_cpu = min(traced_cpu, traced)
        if pair + 1 >= min_pairs and traced_cpu / plain_cpu - 1.0 < 0.05:
            break

    # The trace and the timeline must actually have been recorded (one
    # request root per submitted request, at least the sampler's start
    # sample), or the comparison measures nothing.
    roots = [s for s in tracer.spans() if s.name == "serve.request"]
    assert len(roots) == len(workload)
    assert n_telemetry_samples >= 1

    overhead = traced_cpu / plain_cpu - 1.0
    emit(
        "serve_tracing_overhead",
        f"obs off: {plain_cpu * 1e3:.1f} ms CPU\n"
        f"obs on:  {traced_cpu * 1e3:.1f} ms CPU\n"
        f"overhead: {overhead:.1%} "
        f"({len(tracer)} spans, {n_telemetry_samples} telemetry samples, "
        f"{pair + 1} pairs)",
    )
    assert overhead < 0.05, (
        f"tracing+sampling overhead {overhead:.1%} exceeds the 5% CPU "
        f"bar ({traced_cpu * 1e3:.1f} vs {plain_cpu * 1e3:.1f} ms CPU)"
    )
