"""Ablation (Section V-D) — the numeric-head hybrid repairs the failure.

The paper's proposed future direction: let the LLM delegate number
generation to a supporting quantitative model hooked into the response.
This benchmark compares, at the identical in-context budget:

* the plain LLM discriminative surrogate (the paper's failing setting);
* the hybrid with a k-NN numeric head;
* the hybrid with a small GBT numeric head;
* a GBT trained directly on the same examples (for reference).

Expected shape: the plain LLM's R^2 is at or below zero; both hybrids —
and the reference GBT — reach clearly positive, regressor-class R^2 at
the identical prompt/context budget.
"""

import numpy as np
import pytest

from repro.analysis import score_predictions
from repro.core.hybrid import GBTNumericHead, HybridSurrogate, KNNNumericHead
from repro.core.surrogate import DiscriminativeSurrogate
from repro.dataset import Syr2kTask, generate_dataset
from repro.dataset.splits import disjoint_example_sets
from repro.gbt import (
    BoostingParams,
    FeatureEncoder,
    GradientBoostingRegressor,
    TargetTransform,
)
from repro.utils.tables import Table

N_ICL = 100
N_QUERIES = 30


@pytest.fixture(scope="module")
def material():
    dataset = generate_dataset("SM")
    task = Syr2kTask("SM")
    sets, queries = disjoint_example_sets(
        dataset, 1, N_ICL, seed=31, n_queries=N_QUERIES
    )
    examples = [
        (dataset.config(int(r)), float(dataset.runtimes[int(r)]))
        for r in sets[0]
    ]
    configs = [dataset.config(int(q)) for q in queries]
    truths = np.asarray(
        [float(dataset.runtimes[int(q)]) for q in queries]
    )
    return dataset, task, sets[0], examples, configs, truths


def _llm(material):
    dataset, task, _, examples, configs, truths = material
    surrogate = DiscriminativeSurrogate(task)
    preds = []
    kept = []
    for i, c in enumerate(configs):
        p = surrogate.predict(examples, c, seed=i)
        if p.parsed and p.value and p.value > 0:
            preds.append(p.value)
            kept.append(truths[i])
    return score_predictions(kept, preds)


def _hybrid(material, head):
    dataset, task, _, examples, configs, truths = material
    surrogate = HybridSurrogate(task, head=head)
    preds = [surrogate.predict(examples, c).value for c in configs]
    return score_predictions(truths, preds)


def _direct_gbt(material):
    dataset, task, rows, _, configs, truths = material
    enc = FeatureEncoder(dataset.space)
    tt = TargetTransform("log")
    model = GradientBoostingRegressor(
        BoostingParams(n_estimators=150, learning_rate=0.1, max_depth=4,
                       min_samples_leaf=2)
    ).fit(
        enc.encode_indices(dataset.indices[rows]),
        tt.forward(dataset.runtimes[rows]),
    )
    idx = [dataset.space.to_index(c) for c in configs]
    preds = tt.inverse(model.predict(enc.encode_indices(np.asarray(idx))))
    return score_predictions(truths, preds)


def test_ablation_numeric_head(material, emit, benchmark):
    benchmark.pedantic(
        _hybrid, args=(material, KNNNumericHead()), rounds=1, iterations=1
    )

    results = {
        "plain LLM": _llm(material),
        "hybrid (kNN head)": _hybrid(material, KNNNumericHead(k=7)),
        "hybrid (GBT head)": _hybrid(material, GBTNumericHead()),
        "direct GBT (same 100 rows)": _direct_gbt(material),
    }
    t = Table(
        ["predictor", "R2", "MARE", "MSRE"],
        title=(
            f"Section V-D: numeric-head hybrid vs plain LLM "
            f"({N_ICL} in-context examples, {N_QUERIES} queries, SM)"
        ),
    )
    for name, m in results.items():
        t.add_row([name, m.r2, m.mare, m.msre])
    emit("ablation_numeric_head", t.render())

    assert results["plain LLM"].r2 < 0.3, "the plain LLM fails (Section IV)"
    for name in (
        "hybrid (kNN head)",
        "hybrid (GBT head)",
        "direct GBT (same 100 rows)",
    ):
        assert results[name].r2 > 0.2, f"{name} reaches regressor-class R^2"
        assert results[name].mare < results["plain LLM"].mare
