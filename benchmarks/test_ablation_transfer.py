"""Ablation (intro context) — transfer learning from a related task.

The introduction motivates LLM-based approaches by noting that even
transfer-learning autotuners (the Gaussian-copula method of the paper's
reference [5], which produced the dataset used here) "still require
dozens or more evaluations".  This benchmark runs that substrate: tune
syr2k XL using a copula fitted on the SM table, against random search and
GP-BO under the same small budget.

Expected shape: copula transfer beats random immediately (its very first
proposals land in the fast region), and reaches a good configuration with
fewer evaluations than cold-start GP-BO; with a larger budget GP-BO
catches up — the classic transfer-learning trade-off.
"""

import numpy as np
import pytest

from repro.dataset import Syr2kPerformanceModel, Syr2kTask, generate_dataset
from repro.dataset.syr2k import syr2k_space
from repro.tuning import (
    BayesianOptTuner,
    CopulaTransferTuner,
    RandomSearchTuner,
    compare_tuners,
)
from repro.utils.tables import Table

BUDGET = 30
REPETITIONS = 3


@pytest.fixture(scope="module")
def comparison(sm_dataset):
    space = syr2k_space()
    xl_model = Syr2kPerformanceModel(Syr2kTask("XL"))
    return compare_tuners(
        [
            RandomSearchTuner(space, seed=5),
            BayesianOptTuner(space, seed=5),
            CopulaTransferTuner(space, sm_dataset, seed=5),
        ],
        xl_model,
        budget=BUDGET,
        repetitions=REPETITIONS,
    )


def test_ablation_transfer(comparison, emit, benchmark, sm_dataset):
    def _fit_copula():
        from repro.tuning.copula import GaussianCopula

        return GaussianCopula(sm_dataset)

    benchmark.pedantic(_fit_copula, rounds=1, iterations=1)

    t = Table(
        ["tuner", "best @5 evals", "best @15 evals", f"best @{BUDGET} evals",
         "regret"],
        title=(
            f"SM -> XL transfer tuning (budget {BUDGET}, optimum "
            f"{comparison.global_optimum:.4f} s)"
        ),
    )
    for name, _ in comparison.ranking():
        curve = comparison.mean_curve(name)
        t.add_row(
            [name, float(curve[4]), float(curve[14]), float(curve[-1]),
             comparison.mean_regret(name)]
        )
    emit("ablation_transfer", t.render())

    random_curve = comparison.mean_curve("random")
    copula_curve = comparison.mean_curve("copula-transfer")
    # Transfer's head start: better already after 5 evaluations...
    assert copula_curve[4] < random_curve[4]
    # ...and still at least as good at the full budget.
    assert comparison.mean_best("copula-transfer") <= (
        comparison.mean_best("random") * 1.02
    )
