"""Ablation (ours) — which surrogate-LM mechanism causes which finding?

DESIGN.md attributes each of the paper's observations to a mechanism:
induction-head parroting (copying / prefix clustering), the format prior
(well-formed values, Table II breadth), and the magnitude prior (correct
leading digit per size).  Knocking each out should break its finding:

* no induction  -> copies vanish, error explodes;
* no format     -> parse rate collapses (no demonstrated-format following);
* no prior      -> (magnitude hint off) leading digits drift more often.

This is the reproduction's internal validity check: the phenomenology is
produced by the modelled mechanisms, not by accident.
"""

import numpy as np
import pytest

from repro.core.surrogate import DiscriminativeSurrogate
from repro.dataset import Syr2kTask, generate_dataset
from repro.dataset.splits import disjoint_example_sets
from repro.llm import LMConfig, SurrogateLM, Tokenizer
from repro.utils.tables import Table

N_PROBES = 24
N_ICL = 10


def _run_variant(config: LMConfig | None, dataset, task):
    tokenizer = Tokenizer()
    model = SurrogateLM(tokenizer.vocab, config)
    surrogate = DiscriminativeSurrogate(task, tokenizer=tokenizer, model=model)
    sets, queries = disjoint_example_sets(
        dataset, n_sets=1, set_size=N_ICL, seed=5, n_queries=N_PROBES
    )
    examples = [
        (dataset.config(int(r)), float(dataset.runtimes[int(r)]))
        for r in sets[0]
    ]
    parsed = 0
    copies = 0
    errors = []
    for q, row in enumerate(queries):
        pred = surrogate.predict(examples, dataset.config(int(row)), seed=q)
        if pred.parsed and pred.value > 0:
            parsed += 1
            copies += pred.exact_copy
            truth = float(dataset.runtimes[int(row)])
            errors.append(abs(pred.value - truth) / truth)
    return {
        "parse_rate": parsed / N_PROBES,
        "copy_rate": copies / N_PROBES,
        "median_rel_error": float(np.median(errors)) if errors else float("inf"),
    }


@pytest.fixture(scope="module")
def variants():
    dataset = generate_dataset("SM")
    task = Syr2kTask("SM")
    return {
        "full": _run_variant(None, dataset, task),
        "no-induction": _run_variant(
            LMConfig(use_induction=False), dataset, task
        ),
        "no-format": _run_variant(LMConfig(use_format=False), dataset, task),
        "no-prior": _run_variant(LMConfig(use_prior=False), dataset, task),
        "no-unigram": _run_variant(LMConfig(use_unigram=False), dataset, task),
    }


def test_ablation_lm_components(variants, emit, benchmark):
    benchmark.pedantic(
        _run_variant,
        args=(None, generate_dataset("SM", indices=range(200)), Syr2kTask("SM")),
        rounds=1,
        iterations=1,
    )

    t = Table(
        ["variant", "parse rate", "exact-copy rate", "median rel error"],
        title="Surrogate-LM component knockouts (SM, 10 ICL, 24 probes)",
    )
    for name, stats in variants.items():
        t.add_row(
            [name, stats["parse_rate"], stats["copy_rate"],
             stats["median_rel_error"]]
        )
    emit("ablation_lm_components", t.render())

    full = variants["full"]
    assert full["parse_rate"] > 0.9

    # Induction drives copying and whatever accuracy exists.
    no_ind = variants["no-induction"]
    assert no_ind["copy_rate"] <= full["copy_rate"]
    assert (
        no_ind["median_rel_error"] >= full["median_rel_error"]
        or no_ind["parse_rate"] < full["parse_rate"]
    )

    # The format prior is what makes outputs parse as demonstrated values.
    assert variants["no-format"]["parse_rate"] <= full["parse_rate"]
