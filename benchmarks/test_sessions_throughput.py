"""Session-manager throughput: N concurrent campaigns vs. N sequential.

The acceptance bar for the sessions layer (ISSUE 6): driving N tenant
campaigns concurrently through one shared
:class:`~repro.serve.service.PredictionService` must beat running the
same N campaigns back-to-back.  The win comes from cross-session
parallelism: tenants sharing a tuner trajectory issue identical prompts
each step, so their requests land adjacent in one flush batch and ride a
single lockstep prefix-group decode, where the sequential loop decodes
each request alone.

The determinism contract is asserted alongside the speedup: every
session's history — concurrent or sequential — must be bit-identical to
a plain :func:`~repro.tuning.harness.run_tuner` loop, because the
surrogate prediction is advisory and the recorded runtime is the ground
truth measurement.

Run explicitly (deselected from tier-1 by the ``slow`` marker):

    PYTHONPATH=src python -m pytest benchmarks/test_sessions_throughput.py -m slow -s
"""

from __future__ import annotations

import pytest

from repro.dataset import Syr2kPerformanceModel, Syr2kTask, syr2k_space
from repro.serve import PredictionService, Request
from repro.sessions import (
    DONE,
    AdmissionController,
    SessionManager,
    TuningSession,
)
from repro.tuning import RandomSearchTuner, run_tuner
from repro.utils.tables import Table
from repro.utils.timing import Timer

pytestmark = pytest.mark.slow

#: Workload shape: tenants share one tuner seed (the multi-team-tuning-
#: the-same-kernel scenario), so each step's prompts coincide.
N_TENANTS = 4
BUDGET = 16
TUNER_SEED = 11
N_TRIALS = 3


def _sessions(model) -> list[TuningSession]:
    return [
        TuningSession(
            f"t{i}/s0",
            f"t{i}",
            RandomSearchTuner(syr2k_space(), seed=TUNER_SEED),
            model,
            BUDGET,
            seed=100 + i,
        )
        for i in range(N_TENANTS)
    ]


def _warm(service: PredictionService, model) -> None:
    """Force the lazy per-size surrogate build outside the timed region
    (both modes pay it identically; it is not what's being measured)."""
    space = model.space
    service.submit(
        Request(
            examples=[(space.from_index(0), float(model.runtimes([0])[0]))],
            query_config=space.from_index(1),
            seed=0,
            size=model.task.size,
        )
    )


def _run(model, *, concurrent: bool):
    """One full campaign sweep; sequential mode allows a single
    evaluation in flight against a batch-of-one service."""
    sessions = _sessions(model)
    admission = AdmissionController(
        max_inflight=N_TENANTS if concurrent else 1
    )
    with PredictionService(
        max_batch_size=N_TENANTS if concurrent else 1,
        max_wait_s=0.005,
    ) as service:
        _warm(service, model)
        with SessionManager(
            service, sessions=sessions, admission=admission
        ) as manager:
            with Timer() as timer:
                manager.run()
        stats = service.stats()
    return sessions, stats, timer.elapsed


def test_concurrent_campaigns_beat_sequential(emit):
    model = Syr2kPerformanceModel(Syr2kTask("SM"))
    reference = run_tuner(
        RandomSearchTuner(syr2k_space(), seed=TUNER_SEED), model, BUDGET
    )

    # Interleaved trials, minimum per mode: shared-runner interference
    # only ever *adds* wall time, so the minimum converges on each
    # mode's intrinsic cost (same convention as the tracing-overhead
    # benchmark).  Every trial still pins the determinism contract.
    seq_s = conc_s = float("inf")
    seq_stats = conc_stats = None
    for _ in range(N_TRIALS):
        for concurrent in (False, True):
            sessions, stats, elapsed = _run(model, concurrent=concurrent)
            for session in sessions:
                assert session.state == DONE
                assert session.history.indices == reference.history.indices
                assert (
                    session.history.runtimes == reference.history.runtimes
                )
            if concurrent and elapsed < conc_s:
                conc_s, conc_stats = elapsed, stats
            elif not concurrent and elapsed < seq_s:
                seq_s, seq_stats = elapsed, stats

    n_evals = N_TENANTS * BUDGET
    speedup = seq_s / conc_s
    t = Table(
        ["mode", "wall s", "evals/s", "mean batch", "occupancy"],
        title=f"sessions throughput ({N_TENANTS} tenants x "
        f"{BUDGET} evaluations, shared trajectory)",
    )
    for label, stats, elapsed in (
        ("concurrent", conc_stats, conc_s),
        ("sequential", seq_stats, seq_s),
    ):
        t.add_row([
            label,
            round(elapsed, 2),
            round(n_evals / max(elapsed, 1e-9), 1),
            round(stats.mean_batch_size, 2),
            f"{stats.batch_occupancy:.0%}",
        ])
    emit("sessions_throughput", t.render() + f"\nspeedup: {speedup:.1f}x")

    assert speedup >= 1.3, (
        f"concurrent campaigns only {speedup:.2f}x faster than "
        f"sequential ({conc_s:.2f}s vs {seq_s:.2f}s) — below the 1.3x "
        "acceptance bar"
    )
