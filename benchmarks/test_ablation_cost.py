"""Ablation (Section V-C) — the compute-cost case against LLM autotuning.

"we do not expect fine-tuning and LLM inference to be more computationally
efficient than existing non-LLM-based techniques suitable to such
problems" — quantified: per ICL count, the FLOPs of one 8B-transformer
prediction (measured prompt tokens) vs. training a whole GBT on the same
examples and predicting.

Expected shape: prompt length grows linearly with ICL count; the LLM's
per-prediction compute exceeds the GBT train+predict cost by many orders
of magnitude at every ICL count — and the accuracy comparison (Table I vs
Section IV-A) goes the same way.
"""

import pytest

from repro.analysis.cost import context_cost_table
from repro.utils.tables import Table


def test_ablation_cost(grid_probes, emit, benchmark):
    rows = benchmark.pedantic(
        context_cost_table, args=(grid_probes,), rounds=1, iterations=1
    )

    t = Table(
        ["n ICL", "mean prompt tokens", "LLM FLOPs/prediction",
         "GBT train+predict FLOPs", "LLM overhead factor"],
        title=(
            "Section V-C: compute cost of one LLM prediction vs training "
            "a GBT on the same examples (8B dense transformer)"
        ),
    )
    for row in rows:
        t.add_row(
            [row.n_icl, row.mean_prompt_tokens,
             row.llm_flops_per_prediction,
             row.gbt_train_plus_predict_flops,
             row.llm_overhead_factor]
        )
    emit("ablation_cost", t.render())

    tokens = [row.mean_prompt_tokens for row in rows]
    assert all(b > a for a, b in zip(tokens, tokens[1:])), (
        "prompt length grows with ICL count"
    )
    for row in rows:
        assert row.llm_overhead_factor > 1e3, (
            "LLM inference is never compute-competitive with the GBT"
        )
    # Linear-ish token growth: tokens per example roughly constant.
    per_example = [
        (tokens[i + 1] - tokens[i]) / (rows[i + 1].n_icl - rows[i].n_icl)
        for i in range(len(rows) - 1)
    ]
    assert max(per_example) < 2.0 * min(per_example)
