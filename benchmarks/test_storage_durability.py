"""Chaos drill for the durability layer: kill -9 under disk faults.

The acceptance bar (ISSUE 7): a checkpointed grid repeatedly hard-killed
by injected disk faults (torn writes, bitflips-after-ack, ENOSPC, fsync
failures under :data:`~repro.faults.DISK_FAULT_PLAN`), repaired with
``repro fsck --repair`` between crashes and resumed, must reproduce a
**bit-identical** probe history to an unfaulted run — and the same
discipline must hold for an event journal.  Every injected corruption is
accounted for in a :class:`~repro.core.storage.RecoveryReport`; nothing
is silently lost, nothing wrong is silently loaded.

This reuses the CLI drill (``repro chaos --disk``) so the benchmark and
the operator command cannot drift apart, plus a randomized fuzz pass
(seeded — reproducible) that slices and flips a live checkpoint between
repair/verify round-trips.

Run explicitly (deselected from tier-1 by the ``chaos`` marker):

    PYTHONPATH=src python -m pytest benchmarks/test_storage_durability.py -m chaos -s
"""

from __future__ import annotations

import random

import pytest

from repro.cli import main
from repro.core import quick_grid, run_grid
from repro.core.storage import (
    load_probes_jsonl,
    repair_artifact,
    save_probes_jsonl,
    verify_artifact,
)

pytestmark = pytest.mark.chaos


class TestDiskChaosDrill:
    def test_cli_disk_drill_passes(self):
        """kill -9 under DISK_FAULT_PLAN -> fsck --repair -> resume ->
        bit-identical history, via the operator-facing command."""
        assert main(["chaos", "--disk", "--seed", "1"]) == 0

    def test_cli_disk_drill_second_seed(self):
        """A different seed exercises a different fault schedule."""
        assert main(["chaos", "--disk", "--seed", "5"]) == 0


class TestRepairFuzz:
    def test_random_corruption_never_defeats_fsck(self, tmp_path):
        """200 seeded random corruptions (truncate / flip / splice) of a
        real checkpoint: repair always converges to a clean artifact
        holding only verbatim records from the original."""
        probes = run_grid(
            quick_grid(
                sizes=("SM",), icl_counts=(1, 2), n_sets=1, seeds=(1,),
                n_queries=2,
            ),
            workers=1,
        )
        path = tmp_path / "probes.jsonl"
        save_probes_jsonl(probes, path)
        pristine = path.read_bytes()
        true_keys = {
            (p.spec.cell_key, p.query_index, p.generated_text)
            for p in probes
        }
        rng = random.Random(20250808)
        for trial in range(200):
            blob = bytearray(pristine)
            op = rng.choice(("truncate", "flip", "splice", "double"))
            if op == "truncate":
                blob = blob[: rng.randrange(len(blob))]
            elif op == "flip":
                for _ in range(rng.randrange(1, 4)):
                    pos = rng.randrange(len(blob))
                    blob[pos] ^= 1 << rng.randrange(8)
            elif op == "splice":
                start = rng.randrange(len(blob))
                end = min(len(blob), start + rng.randrange(1, 200))
                del blob[start:end]
            else:  # double: a replayed torn batch
                start = rng.randrange(len(blob))
                blob = blob + blob[start:]
            path.write_bytes(bytes(blob))
            repair_artifact(path, kind="probes")
            report = verify_artifact(path, kind="probes")
            assert report.clean, f"trial={trial} op={op}"
            recovered = load_probes_jsonl(path)  # strict must succeed
            got = {
                (p.spec.cell_key, p.query_index, p.generated_text)
                for p in recovered
            }
            assert got <= true_keys, f"trial={trial} op={op}"
