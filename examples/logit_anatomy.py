"""Anatomy of one generation: logits, decoding tree, modes, copies.

Walks through everything the paper's Sections IV-B/IV-C extract from the
model's recorded logits for a single prediction: the per-position
candidate counts (Table II), the enumerated haystack of generable values,
the prefix-keyed modes (Figure 4), and how the candidate probability mass
clusters around the in-context example values (Figure 3).

Run:  python examples/logit_anatomy.py
"""

from repro import DiscriminativeSurrogate, Syr2kTask, generate_dataset
from repro.analysis import enumerate_value_decodings
from repro.analysis.copying import prefix_clusters
from repro.analysis.distributions import bimodality_split, summarize_candidates
from repro.dataset.splits import curated_neighborhood


def main() -> None:
    task = Syr2kTask("XL")  # XL gives first-token variety (Table II)
    dataset = generate_dataset(task)

    # Curated minimal-edit-distance ICL, like the paper's Figure 3 setting.
    rows, query_row = curated_neighborhood(dataset, set_size=20, seed=9)
    examples = [
        (dataset.config(int(r)), float(dataset.runtimes[int(r)]))
        for r in rows
    ]
    truth = float(dataset.runtimes[query_row])

    surrogate = DiscriminativeSurrogate(task)
    pred = surrogate.predict(examples, dataset.config(query_row), seed=2)
    print(f"sampled generation: {pred.generated_text!r} (truth {truth:.4f})")

    # --- Table II: selectable tokens per position --------------------- #
    print("\nper-position candidate counts (Table II):")
    for i, step in enumerate(pred.value_steps, start=1):
        shown = ", ".join(step.tokens[:6])
        more = f", ... ({len(step.tokens)} total)" if len(step.tokens) > 6 else ""
        print(f"  token {i}: chose {step.chosen_token!r} from "
              f"[{shown}{more}]")

    # --- the haystack -------------------------------------------------- #
    alts = enumerate_value_decodings(pred.value_steps, max_candidates=500)
    summary = summarize_candidates(alts.values, alts.probs)
    print(f"\nhaystack: {len(alts.candidates)} values, combinatorial bound "
          f"{alts.naive_permutations:,}")
    print(f"  weighted mean {summary.mean:.4f} | median {summary.median:.4f} "
          f"| mode {summary.mode:.4f} | truth {truth:.4f}")
    print(f"  truth inside generable range: {summary.contains(truth)}")

    # --- Figure 4: prefix-keyed modes ---------------------------------- #
    modes, multimodal = bimodality_split(alts, prefix_len=3)
    print(f"\nprefix modes (multimodal={multimodal}):")
    for m in modes[:4]:
        print(f"  '{m.prefix}*': mass {m.mass:.3f}, mean value "
              f"{m.mean_value:.4f} ({m.n_candidates} candidates)")

    # --- Figure 3: clustering on ICL values ----------------------------- #
    report = prefix_clusters(alts, pred.icl_value_strings)
    print("\ncandidate mass by nearest ICL value (Figure 3):")
    for c in report.clusters[:5]:
        print(f"  {c.icl_value} (x{c.icl_multiplicity} in context): "
              f"mass {c.mass:.3f}")
    print(f"mass on exact ICL copies: {report.mass_on_exact_copies:.3f}")
    print(f"mass-weighted prefix overlap: {report.mean_prefix_overlap:.3f}")


if __name__ == "__main__":
    main()
