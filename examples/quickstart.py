"""Quickstart: predict a syr2k runtime with the LLM surrogate.

Builds the SM performance dataset, shows the model ten in-context
examples, asks it to predict the runtime of an unseen configuration, and
compares the prediction (plus its generable-value haystack) to the ground
truth — the paper's core experiment in thirty lines.

Run:  python examples/quickstart.py
"""

from repro import DiscriminativeSurrogate, Syr2kTask, generate_dataset
from repro.analysis import enumerate_value_decodings
from repro.dataset.splits import disjoint_example_sets


def main() -> None:
    task = Syr2kTask("SM")
    dataset = generate_dataset(task)
    print(f"task: {task}")
    print(f"dataset: {len(dataset)} configurations, "
          f"runtimes {dataset.runtimes.min():.5f}..{dataset.runtimes.max():.5f} s")

    # Ten random ICL examples and one held-out query.
    sets, queries = disjoint_example_sets(dataset, 1, 10, seed=42)
    examples = [
        (dataset.config(int(r)), float(dataset.runtimes[int(r)]))
        for r in sets[0]
    ]
    query_row = int(queries[0])
    truth = float(dataset.runtimes[query_row])

    surrogate = DiscriminativeSurrogate(task)
    pred = surrogate.predict(examples, dataset.config(query_row), seed=1)

    print("\nICL example runtimes:",
          ", ".join(v for v in pred.icl_value_strings))
    print(f"model generated : {pred.generated_text!r}")
    print(f"parsed value    : {pred.value}")
    print(f"ground truth    : {truth:.7f}")
    if pred.value:
        print(f"relative error  : {abs(pred.value - truth) / truth:.1%}")
    print(f"verbatim ICL copy: {pred.exact_copy}")

    # The recorded logits define every value the model *could* have said.
    alts = enumerate_value_decodings(pred.value_steps, max_candidates=200)
    print(f"\nhaystack: {len(alts.candidates)} generable values "
          f"(combinatorial bound {alts.naive_permutations:,}), "
          f"range {alts.values.min():.5f}..{alts.values.max():.5f}")
    print("top-5 by probability:")
    for cand, p in zip(alts.candidates[:5], alts.probs[:5]):
        print(f"  {cand.text:>12s}  p={p:.3f}")


if __name__ == "__main__":
    main()
