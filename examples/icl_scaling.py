"""Does more in-context learning help?  (It does not.)

Sweeps the number of ICL examples from 1 to 100 on both problem sizes
and both selection strategies, printing the per-ICL-count error — the
paper's counterintuitive finding that "LLM prediction error often
increases with additional ICL examples", including in the curated
minimal-edit-distance setting designed to make the task as easy as
possible.

Run:  python examples/icl_scaling.py
"""

from collections import defaultdict

import numpy as np

from repro.core import paper_grid, run_grid
from repro.utils.tables import Table


def main() -> None:
    specs = paper_grid(
        sizes=("SM", "XL"),
        icl_counts=(1, 2, 5, 10, 20, 50, 100),
        n_sets=3,
        seeds=(1, 2),
        n_queries=3,
    )
    print(f"running {len(specs)} experiment cells "
          f"({sum(s.n_queries for s in specs)} generations)...")
    probes = run_grid(specs, workers=None)

    errors = defaultdict(list)
    copies = defaultdict(list)
    for p in probes:
        if p.parsed:
            key = (p.spec.selection, p.spec.n_icl)
            errors[key].append(min(p.relative_error, 10.0))
            copies[key].append(p.exact_copy)

    table = Table(
        ["n ICL", "MARE (random)", "MARE (curated)", "copy rate (random)",
         "copy rate (curated)"],
        title="Prediction error vs. amount of in-context learning",
    )
    for n in (1, 2, 5, 10, 20, 50, 100):
        table.add_row(
            [
                n,
                float(np.mean(errors[("random", n)])),
                float(np.mean(errors[("curated", n)])),
                float(np.mean(copies[("random", n)])),
                float(np.mean(copies[("curated", n)])),
            ]
        )
    print()
    print(table.render())
    print(
        "\nNote how error plateaus (or worsens) past ~10 examples, and how "
        "curated near-identical examples do not rescue accuracy — the "
        "model parrots context statistics instead of regressing."
    )


if __name__ == "__main__":
    main()
