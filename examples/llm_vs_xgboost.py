"""LLM in-context learning vs. the gradient-boosted-tree baseline.

Reproduces the paper's central comparison on a reduced grid: the GBT
baseline (Section III-D) is trained on modest data and scored on a
holdout, while the LLM surrogate predicts the same task from in-context
examples.  Prints Table-I-style rows for the GBT and Section-IV-A-style
summary statistics for the LLM.

Run:  python examples/llm_vs_xgboost.py
"""

import numpy as np

from repro import generate_dataset
from repro.analysis import needle_fractions, relative_errors, score_predictions
from repro.core import build_report, quick_grid, run_grid
from repro.dataset.splits import train_test_split
from repro.gbt import (
    BoostingParams,
    FeatureEncoder,
    GradientBoostingRegressor,
    TargetTransform,
)
from repro.utils.tables import Table


def gbt_rows(size: str) -> tuple[Table, np.ndarray]:
    dataset = generate_dataset(size)
    train, test = train_test_split(dataset, 0.8, seed=1)
    enc = FeatureEncoder(dataset.space)
    tt = TargetTransform("log")
    table = Table(
        ["training examples", "R2", "MARE", "MSRE"],
        title=f"GBT baseline on syr2k {size} (Table I shape)",
    )
    errors_100 = None
    for n in (100, 500, 2000):
        sub = train.subset(np.arange(n))
        model = GradientBoostingRegressor(
            BoostingParams(n_estimators=150, learning_rate=0.1, max_depth=5,
                           min_samples_leaf=2)
        ).fit(enc.encode_dataset(sub), tt.forward(sub.runtimes))
        pred = tt.inverse(model.predict(enc.encode_dataset(test)))
        m = score_predictions(test.runtimes, pred)
        table.add_row([n, m.r2, m.mare, m.msre])
        if n == 100:
            errors_100 = relative_errors(test.runtimes, pred)
    return table, errors_100


def main() -> None:
    sm_table, gbt_errors = gbt_rows("SM")
    print(sm_table.render())

    print("\nRunning the LLM grid (reduced; this takes ~10 s)...")
    probes = run_grid(
        quick_grid(sizes=("SM",), icl_counts=(1, 5, 20, 50), n_sets=3,
                   seeds=(1, 2), n_queries=4),
        workers=None,
    )
    report = build_report(probes)
    print()
    for line in report.summary_lines():
        print("LLM " + line)

    llm_errors = np.asarray(
        [p.relative_error for p in probes if p.parsed]
    )
    table = Table(
        ["rel-error bound", "LLM within bound", "GBT-100 within bound"],
        title="Needles in a haystack (Section IV-C)",
    )
    llm = needle_fractions(llm_errors)
    gbt = needle_fractions(gbt_errors)
    for b in (0.5, 0.1, 0.01):
        table.add_row([f"{b:.0%}", llm[b], gbt[b]])
    print()
    print(table.render())
    print("\nConclusion (as in the paper): the GBT baseline dominates the "
          "LLM at every error bound.")


if __name__ == "__main__":
    main()
