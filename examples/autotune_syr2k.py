"""Autotuning syr2k: classic searchers vs. the LLM candidate sampler.

The paper's motivating domain: find a fast configuration of the 10,648-
point syr2k space in a budget of tens of empirical evaluations.  Compares
random search, hill climbing, GP-based Bayesian optimization (the
ytopt/GPTune family), and the LLAMBO-style LLM candidate-sampling tuner.

Run:  python examples/autotune_syr2k.py
"""

from repro import Syr2kTask
from repro.dataset import Syr2kPerformanceModel, syr2k_space
from repro.tuning import (
    BayesianOptTuner,
    HillClimbTuner,
    LLMCandidateTuner,
    RandomSearchTuner,
    compare_tuners,
)
from repro.utils.tables import Table

BUDGET = 60
REPETITIONS = 3


def main() -> None:
    task = Syr2kTask("SM")
    space = syr2k_space()
    model = Syr2kPerformanceModel(task)
    print(f"tuning {task}: space of {space.size} configurations, "
          f"budget {BUDGET} evaluations, {REPETITIONS} repetitions")

    llm = LLMCandidateTuner(space, task, seed=7)
    comparison = compare_tuners(
        [
            RandomSearchTuner(space, seed=7),
            HillClimbTuner(space, seed=7),
            BayesianOptTuner(space, seed=7),
            llm,
        ],
        model,
        budget=BUDGET,
        repetitions=REPETITIONS,
    )

    table = Table(
        ["tuner", "mean best runtime (s)", "regret vs optimum",
         "best @10 evals", "best @60 evals"],
        title=f"syr2k SM autotuning (optimum {comparison.global_optimum:.6f} s)",
    )
    for name, best in comparison.ranking():
        curve = comparison.mean_curve(name)
        table.add_row(
            [name, best, comparison.mean_regret(name), float(curve[9]),
             float(curve[-1])]
        )
    print()
    print(table.render())
    print(f"\nLLM candidate sampler: {llm.n_proposals} proposals, "
          f"{llm.fallback_rate:.0%} fell back to random (unparsable or "
          "repeated configurations) — the format-deviation failure mode "
          "the paper describes.")


if __name__ == "__main__":
    main()
