"""Transfer learning across sizes and kernels with the Gaussian copula.

The dataset this paper evaluates on came from a transfer-learning
autotuning study (Gaussian copula, ICS'23 — the paper's reference [5]).
This example runs that substrate in both transfer regimes the library
supports:

* size transfer:   syr2k SM table  ->  tuning syr2k XL
* kernel transfer: syr2k SM table  ->  tuning GEMM SM

and compares against cold-start random search and GP-BO.

Run:  python examples/cross_kernel_transfer.py
"""

from repro.dataset import (
    GemmPerformanceModel,
    GemmTask,
    Syr2kPerformanceModel,
    Syr2kTask,
    generate_dataset,
    syr2k_space,
)
from repro.tuning import (
    BayesianOptTuner,
    CopulaTransferTuner,
    RandomSearchTuner,
    compare_tuners,
)
from repro.utils.tables import Table

BUDGET = 25
REPETITIONS = 3


def run_transfer(title, source, target_model):
    space = syr2k_space()
    comparison = compare_tuners(
        [
            RandomSearchTuner(space, seed=5),
            BayesianOptTuner(space, seed=5),
            CopulaTransferTuner(space, source, seed=5),
        ],
        target_model,
        budget=BUDGET,
        repetitions=REPETITIONS,
    )
    table = Table(
        ["tuner", "best @5", "best @25", "regret"],
        title=f"{title} (optimum {comparison.global_optimum:.4f} s)",
    )
    for name, _ in comparison.ranking():
        curve = comparison.mean_curve(name)
        table.add_row(
            [name, float(curve[4]), float(curve[-1]),
             comparison.mean_regret(name)]
        )
    print(table.render())
    print()


def main() -> None:
    source = generate_dataset("SM")  # the syr2k SM table
    print(f"source data: syr2k SM, {len(source)} rows\n")

    run_transfer(
        "size transfer: syr2k SM -> syr2k XL",
        source,
        Syr2kPerformanceModel(Syr2kTask("XL")),
    )
    run_transfer(
        "kernel transfer: syr2k SM -> gemm SM",
        source,
        GemmPerformanceModel(GemmTask("SM")),
    )
    print(
        "The copula's head start comes from knowing which parameter\n"
        "combinations co-occur with fast runtimes — structure that\n"
        "transfers across sizes and (partially) across kernels, which is\n"
        "why the paper's intro cites transfer learning as the efficient\n"
        "alternative LLM-based methods would have to beat."
    )


if __name__ == "__main__":
    main()
