"""Fixing the failure: the paper's Section V-D numeric-head proposal.

The paper ends by proposing that an LLM could emit a special token that
delegates number generation to a supporting quantitative model.  This
example runs that design (``repro.core.hybrid``) head-to-head against the
plain LLM surrogate at the identical in-context budget and shows the
failure disappear.

Run:  python examples/fixing_the_failure.py
"""

import numpy as np

from repro import DiscriminativeSurrogate, Syr2kTask, generate_dataset
from repro.analysis import score_predictions
from repro.core import GBTNumericHead, HybridSurrogate, KNNNumericHead
from repro.dataset.splits import disjoint_example_sets
from repro.utils.tables import Table

N_ICL = 100
N_QUERIES = 25


def main() -> None:
    task = Syr2kTask("SM")
    dataset = generate_dataset(task)
    sets, queries = disjoint_example_sets(
        dataset, 1, N_ICL, seed=13, n_queries=N_QUERIES
    )
    examples = [
        (dataset.config(int(r)), float(dataset.runtimes[int(r)]))
        for r in sets[0]
    ]
    configs = [dataset.config(int(q)) for q in queries]
    truths = np.asarray([float(dataset.runtimes[int(q)]) for q in queries])

    print(f"{N_ICL} in-context examples, {N_QUERIES} held-out queries\n")

    # Plain LLM (the paper's failing setting).
    llm = DiscriminativeSurrogate(task)
    llm_preds, llm_truths = [], []
    for i, c in enumerate(configs):
        p = llm.predict(examples, c, seed=i)
        if p.parsed and p.value:
            llm_preds.append(p.value)
            llm_truths.append(truths[i])
    llm_metrics = score_predictions(llm_truths, llm_preds)

    table = Table(["predictor", "R2", "MARE"], title="Same context budget")
    table.add_row(["plain LLM surrogate", llm_metrics.r2, llm_metrics.mare])

    for head in (KNNNumericHead(k=7), GBTNumericHead()):
        hybrid = HybridSurrogate(task, head=head)
        preds = [hybrid.predict(examples, c).value for c in configs]
        m = score_predictions(truths, preds)
        table.add_row([f"hybrid ({head.name} numeric head)", m.r2, m.mare])

    print(table.render())
    print(
        "\nThe hybrid keeps the LLM's prompt/format handling but routes the "
        "number itself through a small regressor fitted on the in-context "
        "examples — the failure the paper documents is a property of\n"
        "generating digits token-by-token, not of the task."
    )


if __name__ == "__main__":
    main()
